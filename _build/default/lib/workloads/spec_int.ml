(* Synthetic stand-ins for the SPEC2000 integer benchmarks (Section 7.2).

   Each is a genuine mini-algorithm whose *path structure* mimics its
   namesake: data-dependent, correlated branching that edge profiles
   mispredict, path-space sizes that exercise the array/hash decision,
   and call/loop shapes that give the inliner and unroller something to
   do. Branch conditions are driven by an in-program LCG, so behaviour is
   deterministic but not statically predictable.

   Every benchmark links the cold utility library (Coldlib) and runs one
   validation pass at the end — like its namesake, most of its static
   code is cold. Helper-routine sizes are chosen against the 5% inlining
   budget so the "% calls inlined" column lands near Table 1's. *)

module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder
module K = Kernel

(* vpr: simulated-annealing placement. [cell_at] is tiny and hot (it gets
   inlined); [swap_cost] is too big for the bloat budget, so roughly 2/3
   of dynamic calls inline (Table 1: 71%). *)
let vpr ~scale =
  let grid = 256 in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:7 in
    K.fill_random b lcg ~array_name:"place" ~size:grid;
    let best = B.reg b in
    B.mov b best (Ir.Imm 0);
    let pass = B.reg b in
    B.for_ b pass ~from:(Ir.Imm 0) ~below:(Ir.Imm (6 * scale)) (fun () ->
        let move = B.reg b in
        B.for_ b move ~from:(Ir.Imm 0) ~below:(Ir.Imm 400) (fun () ->
            let a = K.lcg_bits b lcg ~lo:3 ~width:8 in
            let c = K.lcg_bits b lcg ~lo:5 ~width:8 in
            let pa = B.call_ b "cell_at" [ a ] in
            let pc = B.call_ b "cell_at" [ c ] in
            let cost = B.call_ b "swap_cost" [ a; c ] in
            let improves = B.bin_ b Ir.Lt cost (Ir.Imm 0) in
            B.if_ b improves
              ~then_:(fun () ->
                B.store b "place" a pc;
                B.store b "place" c pa;
                B.bin b best Ir.Add (Ir.Reg best) cost)
              ~else_:(fun () ->
                (* Occasionally accept a worsening move early on. *)
                let hot_phase = B.bin_ b Ir.Lt (Ir.Reg pass) (Ir.Imm 2) in
                B.when_ b hot_phase (fun () ->
                    let flip = K.lcg_bits b lcg ~lo:9 ~width:3 in
                    let lucky = B.bin_ b Ir.Eq flip (Ir.Imm 0) in
                    B.when_ b lucky (fun () ->
                        B.store b "place" a pc;
                        B.store b "place" c pa)))));
    B.out b (Ir.Reg best);
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg best));
    B.finish b
  in
  let cell_at =
    let b = B.create ~name:"cell_at" ~nparams:1 in
    let v = B.reg b in
    B.load b v "place" (B.param b 0);
    B.ret b (Some (Ir.Reg v));
    B.finish b
  in
  (* Manhattan-ish cost of swapping cells a and c: compare each against
     its grid position with boundary branches. Deliberately larger than
     the inlining budget. *)
  let swap_cost =
    let b = B.create ~name:"swap_cost" ~nparams:2 in
    let total = B.reg b in
    B.mov b total (Ir.Imm 0);
    let side idx =
      let v = B.reg b in
      B.load b v "place" idx;
      let x = B.bin_ b Ir.And (Ir.Reg v) (Ir.Imm 15) in
      let y = B.bin_ b Ir.Shr (Ir.Reg v) (Ir.Imm 4) in
      let yy = B.bin_ b Ir.And y (Ir.Imm 15) in
      let row = B.bin_ b Ir.Shr idx (Ir.Imm 4) in
      let row = B.bin_ b Ir.And row (Ir.Imm 15) in
      let col = B.bin_ b Ir.And idx (Ir.Imm 15) in
      let dx = B.bin_ b Ir.Sub x col in
      let neg = B.bin_ b Ir.Lt dx (Ir.Imm 0) in
      let adx = B.reg b in
      B.mov b adx dx;
      B.when_ b neg (fun () -> B.bin b adx Ir.Sub (Ir.Imm 0) dx);
      let dy = B.bin_ b Ir.Sub yy row in
      let negy = B.bin_ b Ir.Lt dy (Ir.Imm 0) in
      let ady = B.reg b in
      B.mov b ady dy;
      B.when_ b negy (fun () -> B.bin b ady Ir.Sub (Ir.Imm 0) dy);
      let d = B.bin_ b Ir.Add (Ir.Reg adx) (Ir.Reg ady) in
      B.bin b total Ir.Add (Ir.Reg total) d
    in
    side (B.param b 0);
    side (B.param b 1);
    B.bin b total Ir.Sub (Ir.Reg total) (Ir.Imm 14);
    B.ret b (Some (Ir.Reg total));
    B.finish b
  in
  B.program
    ~arrays:[ ("place", grid) ]
    ~main:"main"
    (main :: cell_at :: swap_cost
    :: Coldlib.standard ~array_name:"place" ~size:grid ~prefix:"lib_")

(* mcf: network simplex stand-in — Bellman-Ford relaxation over a random
   arc list, with the per-arc step in a tiny helper that inlining removes
   completely (Table 1: 98%). The improvement branch decays from hot to
   cold as distances converge. *)
let mcf ~scale =
  let nodes = 128 in
  let arcs = 512 in
  let relax =
    (* relax(a): returns 1 if the arc improved its head's distance. *)
    let b = B.create ~name:"relax" ~nparams:1 in
    let a = B.param b 0 in
    let s = B.load_ b "asrc" a in
    let d = B.load_ b "adst" a in
    let c = B.load_ b "acost" a in
    let ds = B.load_ b "dist" s in
    let cand = B.bin_ b Ir.Add ds c in
    let dd = B.load_ b "dist" d in
    let better = B.bin_ b Ir.Lt cand dd in
    let res = B.reg b in
    B.if_ b better
      ~then_:(fun () ->
        B.store b "dist" d cand;
        B.mov b res (Ir.Imm 1))
      ~else_:(fun () -> B.mov b res (Ir.Imm 0));
    B.ret b (Some (Ir.Reg res));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:11 in
    let i = B.reg b in
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm arcs) (fun () ->
        B.store b "asrc" (Ir.Reg i) (K.lcg_bits b lcg ~lo:2 ~width:7);
        B.store b "adst" (Ir.Reg i) (K.lcg_bits b lcg ~lo:4 ~width:7);
        B.store b "acost" (Ir.Reg i) (K.lcg_bits b lcg ~lo:6 ~width:6));
    let v = B.reg b in
    B.for_ b v ~from:(Ir.Imm 0) ~below:(Ir.Imm nodes) (fun () ->
        B.store b "dist" (Ir.Reg v) (Ir.Imm 1_000_000));
    B.store b "dist" (Ir.Imm 0) (Ir.Imm 0);
    let round = B.reg b in
    let updates = B.reg b in
    B.mov b updates (Ir.Imm 0);
    B.for_ b round ~from:(Ir.Imm 0) ~below:(Ir.Imm (10 * scale)) (fun () ->
        let a = B.reg b in
        B.for_ b a ~from:(Ir.Imm 0) ~below:(Ir.Imm arcs) (fun () ->
            let changed = B.call_ b "relax" [ Ir.Reg a ] in
            B.bin b updates Ir.Add (Ir.Reg updates) changed));
    (* Price out: sum reachable distances (one biased branch). *)
    let total = B.reg b in
    B.mov b total (Ir.Imm 0);
    B.for_ b v ~from:(Ir.Imm 0) ~below:(Ir.Imm nodes) (fun () ->
        let dv = B.load_ b "dist" (Ir.Reg v) in
        let reachable = B.bin_ b Ir.Lt dv (Ir.Imm 1_000_000) in
        B.if_ b reachable
          ~then_:(fun () -> B.bin b total Ir.Add (Ir.Reg total) dv)
          ~else_:(fun () -> B.bin b total Ir.Add (Ir.Reg total) (Ir.Imm 1)));
    B.out b (Ir.Reg updates);
    B.out b (Ir.Reg total);
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg total));
    B.finish b
  in
  B.program
    ~arrays:[ ("asrc", arcs); ("adst", arcs); ("acost", arcs); ("dist", nodes) ]
    ~main:"main"
    (main :: relax :: Coldlib.standard ~array_name:"dist" ~size:nodes ~prefix:"lib_")

(* crafty: board evaluation. Thirteen sequential two-way decisions per
   square - branchless bitboard arithmetic between them - give 2^13
   static paths per loop body, well past the 4000-path hashing
   threshold. The branch biases are graded (50/50 down to 92/8): none
   falls below TPP's 5% local criterion, so TPP keeps hashing with full
   instrumentation (as the paper's crafty does), while PPP's
   self-adjusting global criterion prunes the skewed sides - which carry
   no hot paths - until an array suffices (Sections 4.2-4.3). *)
let crafty ~scale =
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:13 in
    let i = B.reg b in
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 64) (fun () ->
        B.store b "board" (Ir.Reg i) (K.lcg_bits b lcg ~lo:3 ~width:10));
    let score = B.reg b in
    B.mov b score (Ir.Imm 0);
    let ply = B.reg b in
    B.for_ b ply ~from:(Ir.Imm 0) ~below:(Ir.Imm (50 * scale)) (fun () ->
        let sq = B.reg b in
        B.for_ b sq ~from:(Ir.Imm 0) ~below:(Ir.Imm 64) (fun () ->
            let piece = B.load_ b "board" (Ir.Reg sq) in
            (* Branchless "bitboard" feature extraction. *)
            let attacks = B.bin_ b Ir.Xor piece (B.bin_ b Ir.Shl piece (Ir.Imm 3)) in
            let occ = B.bin_ b Ir.Or attacks (B.bin_ b Ir.Shr piece (Ir.Imm 2)) in
            let feat = B.bin_ b Ir.And occ (Ir.Imm 1023) in
            (* The decision chain. Bias d% means the minor side runs with
               probability d/32 per the comparison threshold. *)
            let decide threshold lo bonus penalty =
              let v = K.lcg_bits b lcg ~lo ~width:5 in
              let minor = B.bin_ b Ir.Lt v (Ir.Imm threshold) in
              B.if_ b minor
                ~then_:(fun () ->
                  B.bin b score Ir.Sub (Ir.Reg score) (Ir.Imm penalty))
                ~else_:(fun () ->
                  B.bin b score Ir.Add (Ir.Reg score) (Ir.Imm bonus))
            in
            (* Five near-even decisions: pawn structure, king ring,
               open file, passed pawn, outpost. Two lean 72/28 so a few
               dominant paths cross the 1% hot threshold (Table 2). *)
            decide 16 2 3 2;
            decide 9 4 5 4;
            decide 16 6 2 6;
            decide 9 8 4 1;
            decide 16 10 7 3;
            (* Graded decisions: 37%, 31%, 25%, 19%, 16%, 12%, 9%, 6%
               minor sides - mobility bands, threats, weak squares... *)
            decide 12 3 3 5;
            decide 10 5 2 4;
            decide 8 7 6 2;
            decide 6 9 1 8;
            decide 5 11 5 5;
            decide 4 13 3 7;
            decide 3 12 2 9;
            decide 2 14 4 11;
            (* Fold the branchless features back in. *)
            let centered = B.bin_ b Ir.And feat (Ir.Imm 63) in
            B.bin b score Ir.Add (Ir.Reg score) centered;
            B.bin b score Ir.And (Ir.Reg score) (Ir.Imm 0xffffff));
        (* Mutate a square so plies differ. *)
        let mut = K.lcg_bits b lcg ~lo:4 ~width:6 in
        B.store b "board" mut (K.lcg_bits b lcg ~lo:8 ~width:10));
    B.out b (Ir.Reg score);
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg score));
    B.finish b
  in
  B.program
    ~arrays:[ ("board", 64) ]
    ~main:"main"
    (main :: Coldlib.standard ~array_name:"board" ~size:64 ~prefix:"lib_")

(* parser: tokenizer plus dictionary updates over pseudo-random text.
   [classify] is small and hot (inlined); [hash_word] probes a small
   chain and stays out of line, so a middling fraction of dynamic calls
   inline (Table 1: 29%). The in-word/out-of-word state machine makes
   consecutive branches strongly correlated. *)
let parser ~scale =
  let text_len = 4096 in
  let classify =
    (* 0 letter, 1 digit, 2 space, 3 punct *)
    let b = B.create ~name:"classify" ~nparams:1 in
    let c = B.param b 0 in
    let r = B.reg b in
    let is_letter = B.bin_ b Ir.Lt c (Ir.Imm 40) in
    B.if_ b is_letter
      ~then_:(fun () -> B.mov b r (Ir.Imm 0))
      ~else_:(fun () ->
        let is_digit = B.bin_ b Ir.Lt c (Ir.Imm 50) in
        B.if_ b is_digit
          ~then_:(fun () -> B.mov b r (Ir.Imm 1))
          ~else_:(fun () ->
            let is_space = B.bin_ b Ir.Lt c (Ir.Imm 58) in
            B.if_ b is_space
              ~then_:(fun () -> B.mov b r (Ir.Imm 2))
              ~else_:(fun () -> B.mov b r (Ir.Imm 3))));
    B.ret b (Some (Ir.Reg r));
    B.finish b
  in
  let hash_word =
    (* Open-addressed dictionary update with a short probe loop — big
       enough that the bloat budget never admits it. *)
    let b = B.create ~name:"hash_word" ~nparams:2 in
    let h = B.reg b in
    B.mov b h (B.param b 0);
    B.bin b h Ir.Mul (Ir.Reg h) (Ir.Imm 31);
    B.bin b h Ir.Add (Ir.Reg h) (B.param b 1);
    B.bin b h Ir.And (Ir.Reg h) (Ir.Imm 255);
    let probe = B.reg b in
    B.mov b probe (Ir.Imm 0);
    let placed = B.reg b in
    B.mov b placed (Ir.Imm 0);
    B.while_ b
      ~cond:(fun () ->
        let more = B.bin_ b Ir.Lt (Ir.Reg probe) (Ir.Imm 3) in
        let np = B.bin_ b Ir.Eq (Ir.Reg placed) (Ir.Imm 0) in
        B.bin_ b Ir.And more np)
      ~body:(fun () ->
        let slot = B.bin_ b Ir.Add (Ir.Reg h) (Ir.Reg probe) in
        let slot = B.bin_ b Ir.And slot (Ir.Imm 255) in
        let cur = B.load_ b "dict" slot in
        let empty_or_small = B.bin_ b Ir.Lt cur (Ir.Imm 64) in
        B.if_ b empty_or_small
          ~then_:(fun () ->
            B.store b "dict" slot (B.bin_ b Ir.Add cur (Ir.Imm 1));
            B.mov b placed (Ir.Imm 1))
          ~else_:(fun () -> B.bin b probe Ir.Add (Ir.Reg probe) (Ir.Imm 1)));
    B.ret b (Some (Ir.Reg h));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:17 in
    let i = B.reg b in
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm text_len) (fun () ->
        B.store b "text" (Ir.Reg i) (K.lcg_bits b lcg ~lo:3 ~width:6));
    let words = B.reg b in
    let in_word = B.reg b in
    let word_h = B.reg b in
    let word_len = B.reg b in
    B.mov b words (Ir.Imm 0);
    let pass = B.reg b in
    B.for_ b pass ~from:(Ir.Imm 0) ~below:(Ir.Imm (3 * scale)) (fun () ->
        B.mov b in_word (Ir.Imm 0);
        B.mov b word_h (Ir.Imm 0);
        B.mov b word_len (Ir.Imm 0);
        let prev_cls = B.reg b in
        B.mov b prev_cls (Ir.Imm 2);
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm text_len) (fun () ->
            let c = B.load_ b "text" (Ir.Reg i) in
            let cls = B.call_ b "classify" [ c ] in
            let is_wordish = B.bin_ b Ir.Le cls (Ir.Imm 1) in
            B.if_ b is_wordish
              ~then_:(fun () ->
                (* Correlated: this test almost always goes the same way
                   as last iteration's. *)
                let starting = B.bin_ b Ir.Eq (Ir.Reg in_word) (Ir.Imm 0) in
                B.when_ b starting (fun () ->
                    B.mov b in_word (Ir.Imm 1);
                    B.mov b word_h (Ir.Imm 0);
                    B.mov b word_len (Ir.Imm 0));
                let h = B.call_ b "hash_word" [ Ir.Reg word_h; c ] in
                B.mov b word_h h;
                B.bin b word_len Ir.Add (Ir.Reg word_len) (Ir.Imm 1))
              ~else_:(fun () ->
                let ending = B.bin_ b Ir.Eq (Ir.Reg in_word) (Ir.Imm 1) in
                B.if_ b ending
                  ~then_:(fun () ->
                    B.mov b in_word (Ir.Imm 0);
                    B.bin b words Ir.Add (Ir.Reg words) (Ir.Imm 1);
                    (* Long words take a rare extra path. *)
                    let long = B.bin_ b Ir.Gt (Ir.Reg word_len) (Ir.Imm 12) in
                    B.when_ b long (fun () ->
                        B.store b "dict" (Ir.Imm 0) (Ir.Reg word_len)))
                  ~else_:(fun () ->
                    let is_punct = B.bin_ b Ir.Eq cls (Ir.Imm 3) in
                    B.when_ b is_punct (fun () ->
                        B.bin b words Ir.Add (Ir.Reg words) (Ir.Imm 0))));
            (* Digram statistics: straight-line bookkeeping that makes the
               loop body big enough that the unroller settles for x2,
               keeping the routine's path count below the hashing
               threshold (the original parser behaves the same way). *)
            let dig = B.bin_ b Ir.Mul (Ir.Reg prev_cls) (Ir.Imm 4) in
            let dig = B.bin_ b Ir.Add dig cls in
            let dig = B.bin_ b Ir.Add dig (Ir.Imm 16) in
            let dcount = B.load_ b "dict" dig in
            let dc1 = B.bin_ b Ir.Add dcount (Ir.Imm 1) in
            let dc2 = B.bin_ b Ir.And dc1 (Ir.Imm 0xffff) in
            B.store b "dict" dig dc2;
            let mix = B.bin_ b Ir.Mul dc2 (Ir.Imm 2654435761) in
            let mix = B.bin_ b Ir.Shr mix (Ir.Imm 16) in
            let mix = B.bin_ b Ir.And mix (Ir.Imm 255) in
            let slot = B.bin_ b Ir.Add (Ir.Imm 32) (B.bin_ b Ir.And mix (Ir.Imm 31)) in
            let scount = B.load_ b "dict" slot in
            let sc = B.bin_ b Ir.Add scount (Ir.Reg prev_cls) in
            let sc = B.bin_ b Ir.And sc (Ir.Imm 0xffff) in
            B.store b "dict" slot sc;
            let tri = B.bin_ b Ir.Xor dig mix in
            let tri = B.bin_ b Ir.And tri (Ir.Imm 63) in
            let tslot = B.bin_ b Ir.Add (Ir.Imm 64) tri in
            let tcount = B.load_ b "dict" tslot in
            let tc = B.bin_ b Ir.Add tcount (Ir.Imm 1) in
            let tc = B.bin_ b Ir.And tc (Ir.Imm 0xffff) in
            B.store b "dict" tslot tc;
            let dec = B.bin_ b Ir.Sub (Ir.Reg word_len) (Ir.Imm 1) in
            let dec = B.bin_ b Ir.And dec (Ir.Imm 127) in
            let wslot = B.bin_ b Ir.Add (Ir.Imm 128) dec in
            let wcount = B.load_ b "dict" wslot in
            let wc = B.bin_ b Ir.Add wcount (Ir.Imm 1) in
            B.store b "dict" wslot wc;
            B.mov b prev_cls cls));
    B.out b (Ir.Reg words);
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg words));
    B.finish b
  in
  B.program
    ~arrays:[ ("text", text_len); ("dict", 256) ]
    ~main:"main"
    (main :: classify :: hash_word
    :: Coldlib.standard ~array_name:"dict" ~size:256 ~prefix:"lib_")

(* perlbmk: a bytecode interpreter. Opcode dispatch is an if-else chain;
   the opcode stream is Markov-biased so paths are correlated. A small
   shift helper inlines; the add helper is too big (Table 1: 14%). *)
let perlbmk ~scale =
  let code_len = 2048 in
  let op_shift =
    (* Shift with overflow smearing — out of line, like op_add. *)
    let b = B.create ~name:"op_shift" ~nparams:2 in
    let v = B.reg b in
    let left = B.bin_ b Ir.Eq (B.param b 1) (Ir.Imm 0) in
    B.if_ b left
      ~then_:(fun () ->
        B.bin b v Ir.Shl (B.param b 0) (Ir.Imm 1);
        let over = B.bin_ b Ir.Gt (Ir.Reg v) (Ir.Imm 0x3fffffff) in
        B.when_ b over (fun () ->
            B.bin b v Ir.And (Ir.Reg v) (Ir.Imm 0x3fffffff);
            B.bin b v Ir.Or (Ir.Reg v) (Ir.Imm 1)))
      ~else_:(fun () ->
        B.bin b v Ir.Shr (B.param b 0) (Ir.Imm 1);
        let neg = B.bin_ b Ir.Lt (Ir.Reg v) (Ir.Imm 0) in
        B.when_ b neg (fun () ->
            let lo = B.bin_ b Ir.And (Ir.Reg v) (Ir.Imm 0xffff) in
            B.bin b v Ir.Xor (Ir.Reg v) lo));
    let sticky = B.bin_ b Ir.And (Ir.Reg v) (Ir.Imm 3) in
    let stuck = B.bin_ b Ir.Eq sticky (Ir.Imm 3) in
    B.when_ b stuck (fun () -> B.bin b v Ir.Sub (Ir.Reg v) (Ir.Imm 1));
    B.ret b (Some (Ir.Reg v));
    B.finish b
  in
  let op_str =
    (* The string-ish opcode's tiny inner step: the one helper small
       enough to inline (Table 1: 14%). *)
    let b = B.create ~name:"op_str" ~nparams:1 in
    let acc = B.reg b in
    B.mov b acc (B.param b 0);
    let j = B.reg b in
    B.for_ b j ~from:(Ir.Imm 0) ~below:(Ir.Imm 3) (fun () ->
        B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Reg j));
    B.ret b (Some (Ir.Reg acc));
    B.finish b
  in
  let op_add =
    (* Add top two stack slots with perl-style type coercion and
       saturation — well above the inlining budget. *)
    let b = B.create ~name:"op_add" ~nparams:1 in
    let sp = B.param b 0 in
    let res = B.reg b in
    let ok = B.bin_ b Ir.Gt sp (Ir.Imm 2) in
    B.if_ b ok
      ~then_:(fun () ->
        let t = B.bin_ b Ir.Sub sp (Ir.Imm 1) in
        let t = B.bin_ b Ir.And t (Ir.Imm 63) in
        let u = B.bin_ b Ir.Sub sp (Ir.Imm 2) in
        let u = B.bin_ b Ir.And u (Ir.Imm 63) in
        let a = B.load_ b "stack" t in
        let c = B.load_ b "stack" u in
        (* "Coerce": negative values behave like their magnitudes with a
           sticky sign, mimicking string-to-number conversion paths. *)
        let sign = B.reg b in
        B.mov b sign (Ir.Imm 0);
        let aa = B.reg b in
        B.mov b aa a;
        let an = B.bin_ b Ir.Lt a (Ir.Imm 0) in
        B.when_ b an (fun () ->
            B.bin b aa Ir.Sub (Ir.Imm 0) a;
            B.bin b sign Ir.Xor (Ir.Reg sign) (Ir.Imm 1));
        let cc = B.reg b in
        B.mov b cc c;
        let cn = B.bin_ b Ir.Lt c (Ir.Imm 0) in
        B.when_ b cn (fun () ->
            B.bin b cc Ir.Sub (Ir.Imm 0) c;
            B.bin b sign Ir.Xor (Ir.Reg sign) (Ir.Imm 1));
        let s = B.bin_ b Ir.Add (Ir.Reg aa) (Ir.Reg cc) in
        let s' = B.reg b in
        B.mov b s' s;
        let flip = B.bin_ b Ir.Eq (Ir.Reg sign) (Ir.Imm 1) in
        B.when_ b flip (fun () -> B.bin b s' Ir.Sub (Ir.Imm 0) s);
        let huge = B.bin_ b Ir.Gt (Ir.Reg s') (Ir.Imm 1_000_000) in
        B.if_ b huge
          ~then_:(fun () -> B.store b "stack" u (Ir.Imm 1_000_000))
          ~else_:(fun () -> B.store b "stack" u (Ir.Reg s'));
        B.mov b res (Ir.Imm 1))
      ~else_:(fun () -> B.mov b res (Ir.Imm 0));
    B.ret b (Some (Ir.Reg res));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:23 in
    (* Generate a biased opcode stream: after a push (0), favour
       arithmetic; otherwise uniform. *)
    let prev = B.reg b in
    B.mov b prev (Ir.Imm 0);
    let i = B.reg b in
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm code_len) (fun () ->
        let r = K.lcg_bits b lcg ~lo:3 ~width:3 in
        let was_push = B.bin_ b Ir.Eq (Ir.Reg prev) (Ir.Imm 0) in
        let op = B.reg b in
        B.if_ b was_push
          ~then_:(fun () ->
            let v = B.bin_ b Ir.And r (Ir.Imm 3) in
            let arith = B.bin_ b Ir.Lt v (Ir.Imm 3) in
            B.if_ b arith
              ~then_:(fun () ->
                B.bin b op Ir.Add (B.bin_ b Ir.And r (Ir.Imm 1)) (Ir.Imm 2))
              ~else_:(fun () -> B.mov b op (Ir.Imm 4)))
          ~else_:(fun () -> B.bin b op Ir.And r (Ir.Imm 7));
        B.store b "code" (Ir.Reg i) (Ir.Reg op);
        B.mov b prev (Ir.Reg op));
    (* Interpret the stream [4 * scale] times. *)
    let sp = B.reg b in
    let acc = B.reg b in
    let run = B.reg b in
    B.for_ b run ~from:(Ir.Imm 0) ~below:(Ir.Imm (4 * scale)) (fun () ->
        B.mov b sp (Ir.Imm 1);
        B.mov b acc (Ir.Imm 0);
        let flags = B.reg b in
        B.mov b flags (Ir.Imm 0);
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm code_len) (fun () ->
            let op = B.load_ b "code" (Ir.Reg i) in
            let case k body else_ =
              let is = B.bin_ b Ir.Eq op (Ir.Imm k) in
              B.if_ b is ~then_:body ~else_:else_
            in
            case 0
              (fun () ->
                (* push *)
                B.bin b sp Ir.And (Ir.Reg sp) (Ir.Imm 63);
                B.store b "stack" (Ir.Reg sp) (Ir.Reg i);
                B.bin b sp Ir.Add (Ir.Reg sp) (Ir.Imm 1))
              (fun () ->
                case 1
                  (fun () ->
                    (* pop *)
                    let nonempty = B.bin_ b Ir.Gt (Ir.Reg sp) (Ir.Imm 1) in
                    B.when_ b nonempty (fun () ->
                        B.bin b sp Ir.Sub (Ir.Reg sp) (Ir.Imm 1)))
                  (fun () ->
                    case 2
                      (fun () ->
                        let popped = B.call_ b "op_add" [ Ir.Reg sp ] in
                        B.bin b sp Ir.Sub (Ir.Reg sp) popped)
                      (fun () ->
                        case 3
                          (fun () ->
                            (* xor accumulate *)
                            let t = B.bin_ b Ir.Sub (Ir.Reg sp) (Ir.Imm 1) in
                            let t = K.masked b t ~size:64 in
                            let a = B.load_ b "stack" t in
                            B.bin b acc Ir.Xor (Ir.Reg acc) a)
                          (fun () ->
                            case 4
                              (fun () ->
                                let v = B.call_ b "op_str" [ Ir.Reg acc ] in
                                B.mov b acc v)
                              (fun () ->
                                case 5
                                  (fun () ->
                                    let v =
                                      B.call_ b "op_shift" [ Ir.Reg acc; Ir.Imm 0 ]
                                    in
                                    B.mov b acc v)
                                  (fun () ->
                                    case 6
                                      (fun () ->
                                        let v =
                                          B.call_ b "op_shift"
                                            [ Ir.Reg acc; Ir.Imm 1 ]
                                        in
                                        B.mov b acc v)
                                      (fun () ->
                                        B.bin b acc Ir.Sub (Ir.Reg acc) (Ir.Imm 1))))))));
            (* Correlated tag checks: both consult the same accumulator
               parity, so of the four edge-profile combinations only two
               paths ever execute — the structure edge profiles cannot
               attribute (Section 2). *)
            let parity = B.bin_ b Ir.And (Ir.Reg acc) (Ir.Imm 1) in
            let tainted = B.bin_ b Ir.Eq parity (Ir.Imm 1) in
            B.when_ b tainted (fun () ->
                B.bin b flags Ir.Or (Ir.Reg flags) (Ir.Imm 1));
            let clean = B.bin_ b Ir.Eq parity (Ir.Imm 0) in
            B.when_ b clean (fun () ->
                B.bin b flags Ir.And (Ir.Reg flags) (Ir.Imm (-2)));
            (* And a magic-value check correlated with the opcode. *)
            let magic = B.bin_ b Ir.Eq op (Ir.Imm 0) in
            B.when_ b magic (fun () ->
                B.bin b flags Ir.Xor (Ir.Reg flags) (Ir.Imm 4)));
        B.out b (Ir.Reg acc);
        B.out b (Ir.Reg flags));
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg acc));
    B.finish b
  in
  B.program
    ~arrays:[ ("code", code_len); ("stack", 64) ]
    ~main:"main"
    (main :: op_shift :: op_add :: op_str
    :: Coldlib.standard ~array_name:"stack" ~size:64 ~prefix:"lib_")

(* gap: computer algebra — bignum addition with carry chains (too big to
   inline) and a Euclid gcd (small and hot: inlined), giving the middling
   inline fraction of Table 1 (59%). *)
let gap ~scale =
  let digits = 64 in
  let bignum_add =
    let b = B.create ~name:"bignum_add" ~nparams:2 in
    let carry = B.reg b in
    B.mov b carry (Ir.Imm 0);
    let i = B.reg b in
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm digits) (fun () ->
        let ia = B.bin_ b Ir.Add (B.param b 0) (Ir.Reg i) in
        let ia = K.masked b ia ~size:256 in
        let ib = B.bin_ b Ir.Add (B.param b 1) (Ir.Reg i) in
        let ib = K.masked b ib ~size:256 in
        let da = B.load_ b "num" ia in
        let db = B.load_ b "num" ib in
        let s = B.bin_ b Ir.Add da db in
        let s = B.bin_ b Ir.Add s (Ir.Reg carry) in
        let overflow = B.bin_ b Ir.Ge s (Ir.Imm 1000) in
        B.if_ b overflow
          ~then_:(fun () ->
            B.mov b carry (Ir.Imm 1);
            B.store b "num" ia (B.bin_ b Ir.Sub s (Ir.Imm 1000)))
          ~else_:(fun () ->
            B.mov b carry (Ir.Imm 0);
            B.store b "num" ia s));
    B.ret b (Some (Ir.Reg carry));
    B.finish b
  in
  let gcd =
    let b = B.create ~name:"gcd" ~nparams:2 in
    let x = B.reg b in
    let y = B.reg b in
    B.mov b x (B.param b 0);
    B.mov b y (B.param b 1);
    let fix r =
      let bad = B.bin_ b Ir.Le (Ir.Reg r) (Ir.Imm 0) in
      B.when_ b bad (fun () -> B.mov b r (Ir.Imm 1))
    in
    fix x;
    fix y;
    B.while_ b
      ~cond:(fun () -> B.bin_ b Ir.Ne (Ir.Reg y) (Ir.Imm 0))
      ~body:(fun () ->
        let r = B.bin_ b Ir.Rem (Ir.Reg x) (Ir.Reg y) in
        B.mov b x (Ir.Reg y);
        B.mov b y r);
    B.ret b (Some (Ir.Reg x));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:29 in
    let i = B.reg b in
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 256) (fun () ->
        let v = K.lcg_bits b lcg ~lo:4 ~width:10 in
        let v = B.bin_ b Ir.Rem v (Ir.Imm 1000) in
        B.store b "num" (Ir.Reg i) v);
    let acc = B.reg b in
    B.mov b acc (Ir.Imm 0);
    let round = B.reg b in
    B.for_ b round ~from:(Ir.Imm 0) ~below:(Ir.Imm (40 * scale)) (fun () ->
        let off_a = K.lcg_bits b lcg ~lo:5 ~width:6 in
        let off_b = K.lcg_bits b lcg ~lo:7 ~width:6 in
        let carry = B.call_ b "bignum_add" [ off_a; off_b ] in
        B.bin b acc Ir.Add (Ir.Reg acc) carry;
        let ga = K.lcg_bits b lcg ~lo:3 ~width:12 in
        let gb = K.lcg_bits b lcg ~lo:6 ~width:12 in
        let g = B.call_ b "gcd" [ ga; gb ] in
        B.bin b acc Ir.Add (Ir.Reg acc) g);
    B.out b (Ir.Reg acc);
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg acc));
    B.finish b
  in
  B.program
    ~arrays:[ ("num", 256) ]
    ~main:"main"
    (main :: bignum_add :: gcd
    :: Coldlib.standard ~array_name:"num" ~size:256 ~prefix:"lib_")

(* bzip2: move-to-front coding with run-length detection. The MTF search
   [mtf_find] is small enough to inline; the emit/run-length helper is
   not — about half the dynamic calls inline (Table 1: 49%). *)
let bzip2 ~scale =
  let data_len = 2048 in
  let symbols = 64 in
  let mtf_find =
    (* Position of sym in the MTF table (data-dependent trip count). *)
    let b = B.create ~name:"mtf_find" ~nparams:1 in
    let pos = B.reg b in
    B.mov b pos (Ir.Imm 0);
    let found = B.reg b in
    B.mov b found (Ir.Imm 0);
    B.while_ b
      ~cond:(fun () ->
        let more = B.bin_ b Ir.Lt (Ir.Reg pos) (Ir.Imm symbols) in
        let not_found = B.bin_ b Ir.Eq (Ir.Reg found) (Ir.Imm 0) in
        B.bin_ b Ir.And more not_found)
      ~body:(fun () ->
        let cur = B.load_ b "mtf" (Ir.Reg pos) in
        let hit = B.bin_ b Ir.Eq cur (B.param b 0) in
        B.if_ b hit
          ~then_:(fun () -> B.mov b found (Ir.Imm 1))
          ~else_:(fun () -> B.bin b pos Ir.Add (Ir.Reg pos) (Ir.Imm 1)));
    B.ret b (Some (Ir.Reg pos));
    B.finish b
  in
  let emit_sym =
    (* Move sym to the front and fold the position into the output
       checksum with a little saturation logic — too big to inline. *)
    let b = B.create ~name:"emit_sym" ~nparams:2 in
    let sym = B.param b 0 in
    let pos = B.param b 1 in
    let j = B.reg b in
    B.mov b j pos;
    B.while_ b
      ~cond:(fun () -> B.bin_ b Ir.Gt (Ir.Reg j) (Ir.Imm 0))
      ~body:(fun () ->
        let k = B.bin_ b Ir.Sub (Ir.Reg j) (Ir.Imm 1) in
        let k = K.masked b k ~size:symbols in
        let v = B.load_ b "mtf" k in
        let jm = K.masked b (Ir.Reg j) ~size:symbols in
        B.store b "mtf" jm v;
        B.bin b j Ir.Sub (Ir.Reg j) (Ir.Imm 1));
    B.store b "mtf" (Ir.Imm 0) sym;
    let cost = B.reg b in
    let small = B.bin_ b Ir.Lt pos (Ir.Imm 8) in
    B.if_ b small
      ~then_:(fun () -> B.mov b cost pos)
      ~else_:(fun () ->
        let clipped = B.bin_ b Ir.Add (Ir.Imm 8) (B.bin_ b Ir.Shr pos (Ir.Imm 2)) in
        B.mov b cost clipped);
    B.ret b (Some (Ir.Reg cost));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:31 in
    let i = B.reg b in
    (* Skewed input: long runs of a few symbols, as after a
       Burrows-Wheeler transform. *)
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm data_len) (fun () ->
        let r = K.lcg_bits b lcg ~lo:3 ~width:6 in
        let small = B.bin_ b Ir.Lt r (Ir.Imm 24) in
        let v = B.reg b in
        B.if_ b small
          ~then_:(fun () -> B.bin b v Ir.And r (Ir.Imm 3))
          ~else_:(fun () -> B.mov b v r);
        B.store b "data" (Ir.Reg i) (Ir.Reg v));
    let out_sum = B.reg b in
    B.mov b out_sum (Ir.Imm 0);
    let pass = B.reg b in
    B.for_ b pass ~from:(Ir.Imm 0) ~below:(Ir.Imm (4 * scale)) (fun () ->
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm symbols) (fun () ->
            B.store b "mtf" (Ir.Reg i) (Ir.Reg i));
        let run = B.reg b in
        B.mov b run (Ir.Imm 0);
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm data_len) (fun () ->
            let sym = B.load_ b "data" (Ir.Reg i) in
            (* Escape symbols are vanishingly rare, like bzip2's overflow
               blocks: a cold edge in the middle of the hottest loop. *)
            let esc = B.bin_ b Ir.Ge sym (Ir.Imm 63) in
            B.when_ b esc (fun () ->
                B.store b "data" (Ir.Reg i) (Ir.Imm 0);
                B.bin b out_sum Ir.Add (Ir.Reg out_sum) (Ir.Imm 64));
            let pos = B.call_ b "mtf_find" [ sym ] in
            (* Run-length coding of zeros: position 0 extends a run. *)
            let zero = B.bin_ b Ir.Eq pos (Ir.Imm 0) in
            B.if_ b zero
              ~then_:(fun () -> B.bin b run Ir.Add (Ir.Reg run) (Ir.Imm 1))
              ~else_:(fun () ->
                let had_run = B.bin_ b Ir.Gt (Ir.Reg run) (Ir.Imm 0) in
                B.when_ b had_run (fun () ->
                    B.bin b out_sum Ir.Add (Ir.Reg out_sum) (Ir.Reg run);
                    B.mov b run (Ir.Imm 0));
                let cost = B.call_ b "emit_sym" [ sym; pos ] in
                B.bin b out_sum Ir.Add (Ir.Reg out_sum) cost)));
    B.out b (Ir.Reg out_sum);
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg out_sum));
    B.finish b
  in
  B.program
    ~arrays:[ ("data", data_len); ("mtf", symbols) ]
    ~main:"main"
    (main :: mtf_find :: emit_sym
    :: Coldlib.standard ~array_name:"data" ~size:data_len ~prefix:"lib_")

(* twolf: standard-cell placement refinement — like vpr but with a
   net-cost inner loop of data-dependent length (too big to inline) and
   a tiny coordinate helper (inlined): a low inline fraction, like the
   paper's 23%. *)
let twolf ~scale =
  let cells = 128 in
  let cell_x =
    let b = B.create ~name:"cell_x" ~nparams:1 in
    let p = B.load_ b "cellpos" (B.param b 0) in
    let x = B.bin_ b Ir.And p (Ir.Imm 15) in
    B.ret b (Some x);
    B.finish b
  in
  let net_cost =
    let b = B.create ~name:"net_cost" ~nparams:1 in
    let total = B.reg b in
    B.mov b total (Ir.Imm 0);
    let pins = B.reg b in
    let base = B.param b 0 in
    (* Net size depends on the cell: 10..13 pins. *)
    let sz = B.bin_ b Ir.And base (Ir.Imm 3) in
    let sz = B.bin_ b Ir.Add sz (Ir.Imm 10) in
    B.for_ b pins ~from:(Ir.Imm 0) ~below:sz (fun () ->
        let idx = B.bin_ b Ir.Add base (Ir.Reg pins) in
        let idx = K.masked b idx ~size:cells in
        let p = B.load_ b "cellpos" idx in
        let x = B.bin_ b Ir.And p (Ir.Imm 15) in
        let wide = B.bin_ b Ir.Gt x (Ir.Imm 11) in
        B.if_ b wide
          ~then_:(fun () -> B.bin b total Ir.Add (Ir.Reg total) (Ir.Imm 3))
          ~else_:(fun () -> B.bin b total Ir.Add (Ir.Reg total) x));
    B.ret b (Some (Ir.Reg total));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:37 in
    K.fill_random b lcg ~array_name:"cellpos" ~size:cells;
    let cost = B.reg b in
    B.mov b cost (Ir.Imm 0);
    let temp = B.reg b in
    B.for_ b temp ~from:(Ir.Imm 0) ~below:(Ir.Imm (8 * scale)) (fun () ->
        let attempt = B.reg b in
        B.for_ b attempt ~from:(Ir.Imm 0) ~below:(Ir.Imm 300) (fun () ->
            let c = K.lcg_bits b lcg ~lo:3 ~width:7 in
            (* Rare repair path: a cell pushed off its row (real twolf
               fixes feasibility violations like this occasionally). *)
            let probe = K.lcg_bits b lcg ~lo:12 ~width:8 in
            let broken = B.bin_ b Ir.Eq probe (Ir.Imm 0) in
            B.when_ b broken (fun () ->
                let v = B.load_ b "cellpos" c in
                B.store b "cellpos" c (B.bin_ b Ir.And v (Ir.Imm 127)));
            let x0 = B.call_ b "cell_x" [ c ] in
            let before = B.call_ b "net_cost" [ c ] in
            let old = B.load_ b "cellpos" c in
            let cand = K.lcg_bits b lcg ~lo:6 ~width:8 in
            B.store b "cellpos" c cand;
            let after = B.call_ b "net_cost" [ c ] in
            let worse = B.bin_ b Ir.Gt after before in
            B.if_ b worse
              ~then_:(fun () ->
                (* Mostly reject uphill moves, but keep a warm accept
                   path whose rate decays with temperature. *)
                let gate = K.lcg_bits b lcg ~lo:8 ~width:4 in
                let cool = B.bin_ b Ir.Gt (Ir.Reg temp) (Ir.Imm 2) in
                let threshold = B.reg b in
                B.if_ b cool
                  ~then_:(fun () -> B.mov b threshold (Ir.Imm 1))
                  ~else_:(fun () -> B.mov b threshold (Ir.Imm 6));
                let accept = B.bin_ b Ir.Lt gate (Ir.Reg threshold) in
                B.if_ b accept
                  ~then_:(fun () ->
                    B.bin b cost Ir.Add (Ir.Reg cost)
                      (B.bin_ b Ir.Sub after before))
                  ~else_:(fun () -> B.store b "cellpos" c old))
              ~else_:(fun () ->
                B.bin b cost Ir.Add (Ir.Reg cost) (B.bin_ b Ir.Sub after before);
                B.bin b cost Ir.Add (Ir.Reg cost) x0)));
    B.out b (Ir.Reg cost);
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg cost));
    B.finish b
  in
  B.program
    ~arrays:[ ("cellpos", cells) ]
    ~main:"main"
    (main :: cell_x :: net_cost
    :: Coldlib.standard ~array_name:"cellpos" ~size:cells ~prefix:"lib_")
