(** The eight SPEC2000 integer workloads (see the registry in {!Spec} and
    the shaping notes at the top of the implementation). Each builds a
    complete, well-formed program; [scale] multiplies the main iteration
    counts. *)

val vpr : scale:int -> Ppp_ir.Ir.program
(** Simulated-annealing placement (swap moves with a cost helper). *)

val mcf : scale:int -> Ppp_ir.Ir.program
(** Bellman-Ford relaxation over a random arc list. *)

val crafty : scale:int -> Ppp_ir.Ir.program
(** Board evaluation with a 13-deep decision chain per square: the
    hash-threshold stress test (2^13 static paths per loop body). *)

val parser : scale:int -> Ppp_ir.Ir.program
(** Tokenizer + dictionary over pseudo-random text; strongly correlated
    in-word/out-of-word branching. *)

val perlbmk : scale:int -> Ppp_ir.Ir.program
(** A bytecode interpreter with a Markov-biased opcode stream. *)

val gap : scale:int -> Ppp_ir.Ir.program
(** Bignum addition with carry chains plus Euclid's gcd. *)

val bzip2 : scale:int -> Ppp_ir.Ir.program
(** Move-to-front coding with run-length detection. *)

val twolf : scale:int -> Ppp_ir.Ir.program
(** Standard-cell placement refinement with a net-cost inner loop. *)
