lib/workloads/spec.ml: List Ppp_ir Spec_fp Spec_int
