lib/workloads/spec_int.ml: Coldlib Kernel Ppp_ir
