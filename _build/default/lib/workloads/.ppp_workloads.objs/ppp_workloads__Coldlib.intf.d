lib/workloads/coldlib.mli: Ppp_ir
