lib/workloads/kernel.mli: Ppp_ir
