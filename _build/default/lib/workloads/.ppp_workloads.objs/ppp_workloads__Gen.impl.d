lib/workloads/gen.ml: List Ppp_ir Printf
