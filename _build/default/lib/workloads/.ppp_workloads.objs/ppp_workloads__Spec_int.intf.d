lib/workloads/spec_int.mli: Ppp_ir
