lib/workloads/spec_fp.ml: Coldlib Kernel Ppp_ir
