lib/workloads/spec_fp.mli: Ppp_ir
