lib/workloads/kernel.ml: Ppp_ir
