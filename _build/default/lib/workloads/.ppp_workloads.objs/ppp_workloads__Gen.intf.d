lib/workloads/gen.mli: Ppp_ir
