lib/workloads/spec.mli: Ppp_ir
