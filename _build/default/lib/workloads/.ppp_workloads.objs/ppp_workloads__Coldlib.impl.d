lib/workloads/coldlib.ml: Array List Ppp_ir
