(** Deterministic random program generation for property-based tests.

    Programs are built with {!Ppp_ir.Builder}'s structured combinators,
    so they are always well formed and reducible, and every loop is
    bounded, so they always terminate. Control flow is driven by a linear
    congruential generator computed {e inside} the program, which makes
    branch outcomes data-dependent and correlated — the regime where edge
    profiles mispredict paths. *)

val program : seed:int -> Ppp_ir.Ir.program
(** A random program with a handful of routines (possibly calling each
    other acyclically), loops, branches and array traffic. The same seed
    always yields the same program. *)

val routine : seed:int -> name:string -> Ppp_ir.Ir.routine
(** A single random routine with no calls. *)
