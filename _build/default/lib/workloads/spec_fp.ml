(* Synthetic stand-ins for the SPEC2000 floating-point benchmarks.

   Integer arithmetic stands in for FP (the cost model charges the same),
   but the *control* shape matches the originals: long counted loops with
   straight-line or lightly-branched bodies, high trip counts that invite
   x4 unrolling, and few distinct paths. swim and mgrid in particular are
   built so that after unrolling every path is obvious and PPP adds no
   instrumentation at all (the paper's Section 6.1 special case). *)

module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder
module K = Kernel

let dim = 32 (* grids are dim x dim, flattened *)
let grid = dim * dim

(* swim: shallow-water stencils. Three sweeps per time step, all
   straight-line bodies — the least path-diverse benchmark. *)
let swim ~scale =
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:41 in
    K.fill_random b lcg ~array_name:"u" ~size:grid;
    K.fill_random b lcg ~array_name:"v" ~size:grid;
    let t = B.reg b in
    B.for_ b t ~from:(Ir.Imm 0) ~below:(Ir.Imm (6 * scale)) (fun () ->
        let i = B.reg b in
        (* Interior sweep: p = avg of u,v neighbours. *)
        B.for_ b i ~from:(Ir.Imm dim) ~below:(Ir.Imm (grid - dim)) (fun () ->
            let up = B.load_ b "u" (B.bin_ b Ir.Sub (Ir.Reg i) (Ir.Imm dim)) in
            let down = B.load_ b "u" (B.bin_ b Ir.Add (Ir.Reg i) (Ir.Imm dim)) in
            let here = B.load_ b "v" (Ir.Reg i) in
            let s = B.bin_ b Ir.Add up down in
            let s = B.bin_ b Ir.Add s here in
            let s = B.bin_ b Ir.Shr s (Ir.Imm 2) in
            B.store b "p" (Ir.Reg i) s);
        (* Velocity update sweep. *)
        B.for_ b i ~from:(Ir.Imm 1) ~below:(Ir.Imm (grid - 1)) (fun () ->
            let l = B.load_ b "p" (B.bin_ b Ir.Sub (Ir.Reg i) (Ir.Imm 1)) in
            let r = B.load_ b "p" (B.bin_ b Ir.Add (Ir.Reg i) (Ir.Imm 1)) in
            let d = B.bin_ b Ir.Sub r l in
            let u0 = B.load_ b "u" (Ir.Reg i) in
            B.store b "u" (Ir.Reg i) (B.bin_ b Ir.Add u0 (B.bin_ b Ir.Shr d (Ir.Imm 3))));
        (* Smoothing sweep. *)
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm grid) (fun () ->
            let u0 = B.load_ b "u" (Ir.Reg i) in
            let damped = B.bin_ b Ir.Sub u0 (B.bin_ b Ir.Shr u0 (Ir.Imm 4)) in
            B.store b "v" (Ir.Reg i) damped));
    let check = B.load_ b "u" (Ir.Imm (grid / 2)) in
    B.out b check;
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some check);
    B.finish b
  in
  B.program
    ~arrays:[ ("u", grid); ("v", grid); ("p", grid) ]
    ~main:"main"
    (main :: Coldlib.standard ~array_name:"u" ~size:grid ~prefix:"lib_")

(* mgrid: multigrid V-cycle — restriction to a coarse grid, smoothing,
   prolongation back. Loop bounds carry all the structure; bodies are
   straight lines. The smoother stays out of line (too big for the bloat
   budget); only the rare corner helper inlines, giving the small inline
   fraction of Table 1 (10%). *)
let mgrid ~scale =
  let coarse = dim * dim / 4 in
  let smooth_point =
    (* Red-black weighted smoother — big enough to stay out of line. *)
    let b = B.create ~name:"smooth_point" ~nparams:1 in
    let i = B.param b 0 in
    let im = B.bin_ b Ir.Sub i (Ir.Imm 1) in
    let im = K.masked b im ~size:coarse in
    let ip = B.bin_ b Ir.Add i (Ir.Imm 1) in
    let ip = K.masked b ip ~size:coarse in
    let l = B.load_ b "coarse" im in
    let r = B.load_ b "coarse" ip in
    let here = K.masked b i ~size:coarse in
    let m = B.load_ b "coarse" here in
    let parity = B.bin_ b Ir.And i (Ir.Imm 1) in
    let red = B.bin_ b Ir.Eq parity (Ir.Imm 0) in
    let s = B.reg b in
    B.if_ b red
      ~then_:(fun () ->
        let v =
          B.bin_ b Ir.Add (B.bin_ b Ir.Add l r) (B.bin_ b Ir.Shl m (Ir.Imm 1))
        in
        B.mov b s (B.bin_ b Ir.Shr v (Ir.Imm 2)))
      ~else_:(fun () ->
        let v =
          B.bin_ b Ir.Add
            (B.bin_ b Ir.Add (B.bin_ b Ir.Mul l (Ir.Imm 3)) (B.bin_ b Ir.Mul r (Ir.Imm 3)))
            (B.bin_ b Ir.Shl m (Ir.Imm 1))
        in
        B.mov b s (B.bin_ b Ir.Shr v (Ir.Imm 3)));
    (* Residual damping on large excursions. *)
    let d = B.bin_ b Ir.Sub (Ir.Reg s) m in
    let big = B.bin_ b Ir.Gt d (Ir.Imm (1 lsl 20)) in
    B.when_ b big (fun () ->
        B.mov b s (B.bin_ b Ir.Add m (Ir.Imm (1 lsl 20))));
    let small = B.bin_ b Ir.Lt d (Ir.Imm (-(1 lsl 20))) in
    B.when_ b small (fun () ->
        B.mov b s (B.bin_ b Ir.Sub m (Ir.Imm (1 lsl 20))));
    B.store b "coarse" here (Ir.Reg s);
    B.ret b (Some (Ir.Reg s));
    B.finish b
  in
  let corner_avg =
    let b = B.create ~name:"corner_avg" ~nparams:2 in
    let s = B.bin_ b Ir.Add (B.param b 0) (B.param b 1) in
    let s = B.bin_ b Ir.Shr s (Ir.Imm 1) in
    B.ret b (Some s);
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:43 in
    K.fill_random b lcg ~array_name:"fine" ~size:grid;
    let cycle = B.reg b in
    B.for_ b cycle ~from:(Ir.Imm 0) ~below:(Ir.Imm (8 * scale)) (fun () ->
        let i = B.reg b in
        (* Restrict: coarse[i] = (fine[2i] + fine[2i+1]) / 2. *)
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm coarse) (fun () ->
            let a = B.load_ b "fine" (B.bin_ b Ir.Shl (Ir.Reg i) (Ir.Imm 1)) in
            let c =
              B.load_ b "fine"
                (B.bin_ b Ir.Add (B.bin_ b Ir.Shl (Ir.Reg i) (Ir.Imm 1)) (Ir.Imm 1))
            in
            B.store b "coarse" (Ir.Reg i) (B.bin_ b Ir.Shr (B.bin_ b Ir.Add a c) (Ir.Imm 1)));
        (* Smooth the coarse grid (two sweeps). *)
        let sweep = B.reg b in
        B.for_ b sweep ~from:(Ir.Imm 0) ~below:(Ir.Imm 2) (fun () ->
            B.for_ b i ~from:(Ir.Imm 1) ~below:(Ir.Imm (coarse - 1)) (fun () ->
                B.call b None "smooth_point" [ Ir.Reg i ]));
        (* Boundary correction: a short loop with a tiny helper. *)
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 32) (fun () ->
            let a = B.load_ b "coarse" (Ir.Reg i) in
            let c = B.load_ b "coarse" (B.bin_ b Ir.Add (Ir.Reg i) (Ir.Imm 32)) in
            let v = B.call_ b "corner_avg" [ a; c ] in
            B.store b "coarse" (Ir.Reg i) v);
        (* Prolongate. *)
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm coarse) (fun () ->
            let c = B.load_ b "coarse" (Ir.Reg i) in
            let f = B.load_ b "fine" (B.bin_ b Ir.Shl (Ir.Reg i) (Ir.Imm 1)) in
            B.store b "fine"
              (B.bin_ b Ir.Shl (Ir.Reg i) (Ir.Imm 1))
              (B.bin_ b Ir.Shr (B.bin_ b Ir.Add c f) (Ir.Imm 1))));
    let check = B.load_ b "fine" (Ir.Imm 7) in
    B.out b check;
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some check);
    B.finish b
  in
  B.program
    ~arrays:[ ("fine", grid); ("coarse", coarse) ]
    ~main:"main"
    (main :: smooth_point :: corner_avg
    :: Coldlib.standard ~array_name:"fine" ~size:grid ~prefix:"lib_")

(* wupwise: lattice gauge stand-in - a 3x3 "matrix" times 3-vector at
   every site, written straight-line as real lattice kernels are, with a
   perfectly predictable parity sign and a rare renormalization. *)
let wupwise ~scale =
  let sites = 256 in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:47 in
    K.fill_random b lcg ~array_name:"m" ~size:(9 * 4);
    K.fill_random b lcg ~array_name:"vec" ~size:(sites * 3);
    let sweep = B.reg b in
    B.for_ b sweep ~from:(Ir.Imm 0) ~below:(Ir.Imm (5 * scale)) (fun () ->
        let s = B.reg b in
        B.for_ b s ~from:(Ir.Imm 0) ~below:(Ir.Imm sites) (fun () ->
            let mbase = B.bin_ b Ir.And (Ir.Reg s) (Ir.Imm 3) in
            let mbase = B.bin_ b Ir.Mul mbase (Ir.Imm 9) in
            let vbase = B.bin_ b Ir.Mul (Ir.Reg s) (Ir.Imm 3) in
            (* Load the 3-vector. *)
            let v0 = B.load_ b "vec" vbase in
            let v1 = B.load_ b "vec" (B.bin_ b Ir.Add vbase (Ir.Imm 1)) in
            let v2 = B.load_ b "vec" (B.bin_ b Ir.Add vbase (Ir.Imm 2)) in
            let clip x = B.bin_ b Ir.And x (Ir.Imm 255) in
            let row r =
              let m0 = B.load_ b "m" (B.bin_ b Ir.Add mbase (Ir.Imm (3 * r))) in
              let m1 = B.load_ b "m" (B.bin_ b Ir.Add mbase (Ir.Imm ((3 * r) + 1))) in
              let m2 = B.load_ b "m" (B.bin_ b Ir.Add mbase (Ir.Imm ((3 * r) + 2))) in
              let p0 = B.bin_ b Ir.Mul (clip m0) (clip v0) in
              let p1 = B.bin_ b Ir.Mul (clip m1) (clip v1) in
              let p2 = B.bin_ b Ir.Mul (clip m2) (clip v2) in
              B.bin_ b Ir.Add p0 (B.bin_ b Ir.Add p1 p2)
            in
            let r0 = row 0 in
            let r1 = row 1 in
            let r2 = row 2 in
            let acc = B.reg b in
            B.bin b acc Ir.Add r0 (B.bin_ b Ir.Add r1 r2);
            (* Rare renormalization, as when a gauge link drifts off the
               group manifold. *)
            let drift = B.bin_ b Ir.Gt (Ir.Reg acc) (Ir.Imm 580_000) in
            B.when_ b drift (fun () ->
                B.bin b acc Ir.Shr (Ir.Reg acc) (Ir.Imm 1));
            (* Predictable parity sign. *)
            let parity = B.bin_ b Ir.And (Ir.Reg s) (Ir.Imm 1) in
            let odd = B.bin_ b Ir.Eq parity (Ir.Imm 1) in
            let shift = B.reg b in
            B.if_ b odd
              ~then_:(fun () -> B.mov b shift (Ir.Imm 11))
              ~else_:(fun () -> B.mov b shift (Ir.Imm 10));
            let out0 = B.bin_ b Ir.Shr r0 (Ir.Reg shift) in
            let out1 = B.bin_ b Ir.Shr r1 (Ir.Reg shift) in
            let out2 = B.bin_ b Ir.Shr (Ir.Reg acc) (Ir.Reg shift) in
            B.store b "vec" vbase out0;
            B.store b "vec" (B.bin_ b Ir.Add vbase (Ir.Imm 1)) out1;
            B.store b "vec" (B.bin_ b Ir.Add vbase (Ir.Imm 2)) out2));
    let check = B.load_ b "vec" (Ir.Imm 5) in
    B.out b check;
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some check);
    B.finish b
  in
  B.program
    ~arrays:[ ("m", 36); ("vec", sites * 3) ]
    ~main:"main"
    (main :: Coldlib.standard ~array_name:"m" ~size:36 ~prefix:"lib_")

(* applu: SSOR sweeps with a biased convergence branch and a norm loop. *)
let applu ~scale =
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:53 in
    K.fill_random b lcg ~array_name:"rsd" ~size:grid;
    let iter = B.reg b in
    B.for_ b iter ~from:(Ir.Imm 0) ~below:(Ir.Imm (10 * scale)) (fun () ->
        let i = B.reg b in
        (* Lower sweep. *)
        B.for_ b i ~from:(Ir.Imm dim) ~below:(Ir.Imm grid) (fun () ->
            let prev = B.load_ b "rsd" (B.bin_ b Ir.Sub (Ir.Reg i) (Ir.Imm dim)) in
            let cur = B.load_ b "rsd" (Ir.Reg i) in
            let nxt = B.bin_ b Ir.Sub cur (B.bin_ b Ir.Shr prev (Ir.Imm 2)) in
            B.store b "rsd" (Ir.Reg i) nxt);
        (* Upper sweep with clamping (biased: clamping is rare). *)
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm (grid - dim)) (fun () ->
            let nxt = B.load_ b "rsd" (B.bin_ b Ir.Add (Ir.Reg i) (Ir.Imm dim)) in
            let cur = B.load_ b "rsd" (Ir.Reg i) in
            let v = B.bin_ b Ir.Add cur (B.bin_ b Ir.Shr nxt (Ir.Imm 3)) in
            let huge = B.bin_ b Ir.Gt v (Ir.Imm 100_000_000) in
            B.if_ b huge
              ~then_:(fun () -> B.store b "rsd" (Ir.Reg i) (Ir.Imm 100_000_000))
              ~else_:(fun () -> B.store b "rsd" (Ir.Reg i) v));
        (* Norm. *)
        let norm = B.reg b in
        B.mov b norm (Ir.Imm 0);
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm grid) (fun () ->
            let v = B.load_ b "rsd" (Ir.Reg i) in
            let neg = B.bin_ b Ir.Lt v (Ir.Imm 0) in
            B.if_ b neg
              ~then_:(fun () -> B.bin b norm Ir.Sub (Ir.Reg norm) v)
              ~else_:(fun () -> B.bin b norm Ir.Add (Ir.Reg norm) v));
        B.out b (Ir.Reg norm));
    Coldlib.validate b ~prefix:"lib_";
    B.ret b None;
    B.finish b
  in
  B.program
    ~arrays:[ ("rsd", grid) ]
    ~main:"main"
    (main :: Coldlib.standard ~array_name:"rsd" ~size:grid ~prefix:"lib_")

(* mesa: vertex transform + clipping + span rasterization, plus a
   many-path shading routine with skewed branches: the routine whose
   path count forces PPP's self-adjusting criterion (Section 4.3). *)
let mesa ~scale =
  let verts = 256 in
  let shade =
    let b = B.create ~name:"shade" ~nparams:2 in
    let c = B.reg b in
    B.mov b c (B.param b 0) |> ignore;
    B.mov b c (B.param b 0);
    let acc = B.reg b in
    B.mov b acc (Ir.Imm 0);
    (* Twelve skewed feature tests: each bit of the control word is
       mostly zero, so most paths are warm-to-cold and the global
       criterion can prune them after a few self-adjusting rounds. *)
    for bit = 0 to 11 do
      let v = B.bin_ b Ir.Shr (Ir.Reg c) (Ir.Imm bit) in
      let masked = B.bin_ b Ir.And v (Ir.Imm 7) in
      let on = B.bin_ b Ir.Eq masked (Ir.Imm 7) in
      B.if_ b on
        ~then_:(fun () -> B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm (bit + 1)))
        ~else_:(fun () -> B.bin b acc Ir.Xor (Ir.Reg acc) (Ir.Imm bit))
    done;
    B.ret b (Some (Ir.Reg acc));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:59 in
    K.fill_random b lcg ~array_name:"vx" ~size:verts;
    K.fill_random b lcg ~array_name:"vy" ~size:verts;
    let frames = B.reg b in
    B.for_ b frames ~from:(Ir.Imm 0) ~below:(Ir.Imm (4 * scale)) (fun () ->
        let v = B.reg b in
        B.for_ b v ~from:(Ir.Imm 0) ~below:(Ir.Imm verts) (fun () ->
            (* Transform. *)
            let x = B.load_ b "vx" (Ir.Reg v) in
            let y = B.load_ b "vy" (Ir.Reg v) in
            let tx = B.bin_ b Ir.Add (B.bin_ b Ir.And x (Ir.Imm 1023)) (B.bin_ b Ir.Shr y (Ir.Imm 20)) in
            let ty = B.bin_ b Ir.Add (B.bin_ b Ir.And y (Ir.Imm 1023)) (B.bin_ b Ir.Shr x (Ir.Imm 20)) in
            (* Clip: mostly inside. *)
            let outside = B.bin_ b Ir.Gt tx (Ir.Imm 1000) in
            B.if_ b outside
              ~then_:(fun () -> B.store b "vx" (Ir.Reg v) (Ir.Imm 1000))
              ~else_:(fun () ->
                (* Rasterize a short span. *)
                let len = B.bin_ b Ir.And ty (Ir.Imm 7) in
                let s = B.reg b in
                B.for_ b s ~from:(Ir.Imm 0) ~below:len (fun () ->
                    let px = B.bin_ b Ir.Add tx (Ir.Reg s) in
                    let px = K.masked b px ~size:1024 in
                    let shaded = B.call_ b "shade" [ px; Ir.Reg s ] in
                    B.store b "fb" px shaded))));
    let check = B.load_ b "fb" (Ir.Imm 123) in
    B.out b check;
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some check);
    B.finish b
  in
  B.program
    ~arrays:[ ("vx", verts); ("vy", verts); ("fb", 1024) ]
    ~main:"main"
    (main :: shade :: Coldlib.standard ~array_name:"fb" ~size:1024 ~prefix:"lib_")

(* art: adaptive resonance — dot-product layer, winner-take-all search,
   weight adaptation. The small helpers are 100% inlined, as in the
   paper's Table 1. *)
let art ~scale =
  let neurons = 64 in
  let inputs = 16 in
  let dot =
    let b = B.create ~name:"dot" ~nparams:1 in
    let acc = B.reg b in
    B.mov b acc (Ir.Imm 0);
    let i = B.reg b in
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm inputs) (fun () ->
        let wi = B.bin_ b Ir.Add (B.bin_ b Ir.Mul (B.param b 0) (Ir.Imm inputs)) (Ir.Reg i) in
        let w = B.load_ b "w" wi in
        let x = B.load_ b "inp" (Ir.Reg i) in
        let prod = B.bin_ b Ir.Mul (B.bin_ b Ir.And w (Ir.Imm 255)) (B.bin_ b Ir.And x (Ir.Imm 255)) in
        B.bin b acc Ir.Add (Ir.Reg acc) prod);
    B.ret b (Some (Ir.Reg acc));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:61 in
    K.fill_random b lcg ~array_name:"w" ~size:(neurons * inputs);
    K.fill_random b lcg ~array_name:"inp" ~size:inputs;
    let epoch = B.reg b in
    B.for_ b epoch ~from:(Ir.Imm 0) ~below:(Ir.Imm (30 * scale)) (fun () ->
        (* Perturb the input. *)
        let i = B.reg b in
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm inputs) (fun () ->
            B.store b "inp" (Ir.Reg i) (K.lcg_bits b lcg ~lo:4 ~width:8));
        (* Activations. *)
        let j = B.reg b in
        B.for_ b j ~from:(Ir.Imm 0) ~below:(Ir.Imm neurons) (fun () ->
            let a = B.call_ b "dot" [ Ir.Reg j ] in
            B.store b "act" (Ir.Reg j) a);
        (* Winner-take-all. *)
        let best = B.reg b in
        let best_j = B.reg b in
        B.mov b best (Ir.Imm (-1));
        B.mov b best_j (Ir.Imm 0);
        B.for_ b j ~from:(Ir.Imm 0) ~below:(Ir.Imm neurons) (fun () ->
            let a = B.load_ b "act" (Ir.Reg j) in
            let better = B.bin_ b Ir.Gt a (Ir.Reg best) in
            B.if_ b better
              ~then_:(fun () ->
                B.mov b best a;
                B.mov b best_j (Ir.Reg j))
              ~else_:(fun () -> ()));
        (* Adapt the winner's weights. *)
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm inputs) (fun () ->
            let wi = B.bin_ b Ir.Add (B.bin_ b Ir.Mul (Ir.Reg best_j) (Ir.Imm inputs)) (Ir.Reg i) in
            let w = B.load_ b "w" wi in
            let x = B.load_ b "inp" (Ir.Reg i) in
            let nw = B.bin_ b Ir.Add w (B.bin_ b Ir.Shr (B.bin_ b Ir.Sub x w) (Ir.Imm 2)) in
            B.store b "w" wi nw);
        B.out b (Ir.Reg best_j));
    Coldlib.validate b ~prefix:"lib_";
    B.ret b None;
    B.finish b
  in
  B.program
    ~arrays:[ ("w", neurons * inputs); ("inp", inputs); ("act", neurons) ]
    ~main:"main"
    (main :: dot
    :: Coldlib.standard ~array_name:"act" ~size:neurons ~prefix:"lib_")

(* equake: sparse matrix-vector products over a random CSR structure,
   plus a straight time-integration loop. The one hot helper is tiny, so
   like the paper's equake all dynamic calls inline (Table 1: 100%). *)
let equake ~scale =
  let rows = 128 in
  let nnz = 2048 in
  let vmul =
    let b = B.create ~name:"vmul" ~nparams:2 in
    let a = B.bin_ b Ir.And (B.param b 0) (Ir.Imm 63) in
    let x = B.bin_ b Ir.And (B.param b 1) (Ir.Imm 63) in
    let p = B.bin_ b Ir.Mul a x in
    B.ret b (Some p);
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:67 in
    (* Row pointers: rows of 0..7 entries. *)
    let i = B.reg b in
    let acc = B.reg b in
    B.mov b acc (Ir.Imm 0);
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm rows) (fun () ->
        B.store b "rowp" (Ir.Reg i) (Ir.Reg acc);
        (* Rows carry 10..17 nonzeros, like the real equake's element
           matrices — deep enough for obvious-loop disconnection. *)
        let len = K.lcg_bits b lcg ~lo:5 ~width:3 in
        let len = B.bin_ b Ir.Add len (Ir.Imm 10) in
        B.bin b acc Ir.Add (Ir.Reg acc) len;
        let over = B.bin_ b Ir.Gt (Ir.Reg acc) (Ir.Imm (nnz - 1)) in
        B.when_ b over (fun () -> B.mov b acc (Ir.Imm (nnz - 1))));
    B.store b "rowp" (Ir.Imm rows) (Ir.Reg acc);
    K.fill_random b lcg ~array_name:"col" ~size:nnz;
    K.fill_random b lcg ~array_name:"aval" ~size:nnz;
    K.fill_random b lcg ~array_name:"x" ~size:rows;
    let step = B.reg b in
    B.for_ b step ~from:(Ir.Imm 0) ~below:(Ir.Imm (12 * scale)) (fun () ->
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm rows) (fun () ->
            let start = B.load_ b "rowp" (Ir.Reg i) in
            let stop = B.load_ b "rowp" (B.bin_ b Ir.Add (Ir.Reg i) (Ir.Imm 1)) in
            let sum = B.reg b in
            B.mov b sum (Ir.Imm 0);
            let k = B.reg b in
            B.mov b k start;
            B.while_ b
              ~cond:(fun () -> B.bin_ b Ir.Lt (Ir.Reg k) stop)
              ~body:(fun () ->
                let c = B.load_ b "col" (Ir.Reg k) in
                let c = K.masked b c ~size:rows in
                let a = B.load_ b "aval" (Ir.Reg k) in
                let xv = B.load_ b "x" c in
                let prod = B.call_ b "vmul" [ a; xv ] in
                B.bin b sum Ir.Add (Ir.Reg sum) prod;
                B.bin b k Ir.Add (Ir.Reg k) (Ir.Imm 1));
            (* Rare absorbing-boundary correction. *)
            let damp = B.bin_ b Ir.Gt (Ir.Reg sum) (Ir.Imm 200_000) in
            B.when_ b damp (fun () ->
                B.bin b sum Ir.Shr (Ir.Reg sum) (Ir.Imm 2));
            B.store b "y" (Ir.Reg i) (Ir.Reg sum));
        (* Time integration: straight line. *)
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm rows) (fun () ->
            let y = B.load_ b "y" (Ir.Reg i) in
            let x = B.load_ b "x" (Ir.Reg i) in
            B.store b "x" (Ir.Reg i)
              (B.bin_ b Ir.Add x (B.bin_ b Ir.Shr (B.bin_ b Ir.Sub y x) (Ir.Imm 4)))));
    let check = B.load_ b "x" (Ir.Imm 11) in
    B.out b check;
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some check);
    B.finish b
  in
  B.program
    ~arrays:
      [ ("rowp", rows + 1); ("col", nnz); ("aval", nnz); ("x", rows); ("y", rows) ]
    ~main:"main"
    (main :: vmul :: Coldlib.standard ~array_name:"x" ~size:rows ~prefix:"lib_")

(* ammp: molecular dynamics — pairwise forces with a (biased) cutoff
   test and a short Newton iteration for the distance. The tiny
   squared-distance helper inlines everywhere (Table 1: 98%). *)
let ammp ~scale =
  let atoms = 48 in
  let dist2 =
    let b = B.create ~name:"dist2" ~nparams:2 in
    let xi = B.load_ b "px" (B.param b 0) in
    let xj = B.load_ b "px" (B.param b 1) in
    let yi = B.load_ b "py" (B.param b 0) in
    let yj = B.load_ b "py" (B.param b 1) in
    let dx = B.bin_ b Ir.Sub (B.bin_ b Ir.And xi (Ir.Imm 1023)) (B.bin_ b Ir.And xj (Ir.Imm 1023)) in
    let dy = B.bin_ b Ir.Sub (B.bin_ b Ir.And yi (Ir.Imm 1023)) (B.bin_ b Ir.And yj (Ir.Imm 1023)) in
    let d2 = B.bin_ b Ir.Add (B.bin_ b Ir.Mul dx dx) (B.bin_ b Ir.Mul dy dy) in
    B.ret b (Some d2);
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:71 in
    K.fill_random b lcg ~array_name:"px" ~size:atoms;
    K.fill_random b lcg ~array_name:"py" ~size:atoms;
    let step = B.reg b in
    B.for_ b step ~from:(Ir.Imm 0) ~below:(Ir.Imm (4 * scale)) (fun () ->
        let i = B.reg b in
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm atoms) (fun () ->
            let j = B.reg b in
            B.for_ b j ~from:(Ir.Imm 0) ~below:(Ir.Imm atoms) (fun () ->
                let d2 = B.call_ b "dist2" [ Ir.Reg i; Ir.Reg j ] in
                (* Cutoff: most pairs are too far apart. *)
                let close = B.bin_ b Ir.Lt d2 (Ir.Imm 40_000) in
                B.if_ b close
                  ~then_:(fun () ->
                    let xi = B.load_ b "px" (Ir.Reg i) in
                    let d = K.isqrt_newton b d2 in
                    let f = B.bin_ b Ir.Div (Ir.Imm 100_000) (B.bin_ b Ir.Add d (Ir.Imm 1)) in
                    let xi' = B.bin_ b Ir.Add xi (B.bin_ b Ir.Shr f (Ir.Imm 6)) in
                    B.store b "px" (Ir.Reg i) xi')
                  ~else_:(fun () -> ()))));
    let check = B.load_ b "px" (Ir.Imm 3) in
    B.out b check;
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some check);
    B.finish b
  in
  B.program
    ~arrays:[ ("px", atoms); ("py", atoms) ]
    ~main:"main"
    (main :: dist2 :: Coldlib.standard ~array_name:"px" ~size:atoms ~prefix:"lib_")

(* sixtrack: particle tracking — a linear map per turn with a rare
   aperture-loss path (textbook cold path). The rotation helper is tiny
   and inlines; the sextupole kick is above the budget, so about half of
   the dynamic calls inline (Table 1: 57%). *)
let sixtrack ~scale =
  let particles = 128 in
  let rotate =
    (* One fixed-point rotation component: (v*62 - w*8) >> 6. *)
    let b = B.create ~name:"rotate" ~nparams:2 in
    let r =
      B.bin_ b Ir.Sub
        (B.bin_ b Ir.Shr (B.bin_ b Ir.Mul (B.param b 0) (Ir.Imm 62)) (Ir.Imm 6))
        (B.bin_ b Ir.Shr (B.bin_ b Ir.Mul (B.param b 1) (Ir.Imm 8)) (Ir.Imm 6))
    in
    B.ret b (Some r);
    B.finish b
  in
  let sext_kick =
    (* Nonlinear kick with clamping — stays out of line. *)
    let b = B.create ~name:"sext_kick" ~nparams:1 in
    let x = B.param b 0 in
    let k = B.bin_ b Ir.Shr (B.bin_ b Ir.Mul x x) (Ir.Imm 11) in
    let kk = B.reg b in
    B.mov b kk k;
    let big = B.bin_ b Ir.Gt (Ir.Reg kk) (Ir.Imm 512) in
    B.when_ b big (fun () -> B.mov b kk (Ir.Imm 512));
    let neg = B.bin_ b Ir.Lt (Ir.Reg kk) (Ir.Imm (-512)) in
    B.when_ b neg (fun () -> B.mov b kk (Ir.Imm (-512)));
    let octupole = B.bin_ b Ir.Shr (B.bin_ b Ir.Mul (Ir.Reg kk) x) (Ir.Imm 14) in
    B.bin b kk Ir.Add (Ir.Reg kk) octupole;
    B.ret b (Some (Ir.Reg kk));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:73 in
    K.fill_random b lcg ~array_name:"sx" ~size:particles;
    K.fill_random b lcg ~array_name:"spx" ~size:particles;
    let lost = B.reg b in
    B.mov b lost (Ir.Imm 0);
    let turn = B.reg b in
    B.for_ b turn ~from:(Ir.Imm 0) ~below:(Ir.Imm (25 * scale)) (fun () ->
        let p = B.reg b in
        B.for_ b p ~from:(Ir.Imm 0) ~below:(Ir.Imm particles) (fun () ->
            let alive = B.load_ b "sx" (Ir.Reg p) in
            let dead = B.bin_ b Ir.Eq alive (Ir.Imm (-1)) in
            B.if_ b dead
              ~then_:(fun () -> ())
              ~else_:(fun () ->
                let x = B.bin_ b Ir.And alive (Ir.Imm 4095) in
                let px = B.load_ b "spx" (Ir.Reg p) in
                let px = B.bin_ b Ir.And px (Ir.Imm 4095) in
                (* Rotation-ish linear map in fixed point. *)
                let x' = B.call_ b "rotate" [ x; px ] in
                let px' =
                  B.bin_ b Ir.Add
                    (B.bin_ b Ir.Shr (B.bin_ b Ir.Mul x (Ir.Imm 8)) (Ir.Imm 6))
                    (B.bin_ b Ir.Shr (B.bin_ b Ir.Mul px (Ir.Imm 62)) (Ir.Imm 6))
                in
                (* Sextupole kick: small nonlinearity. *)
                let kick = B.call_ b "sext_kick" [ x' ] in
                let px' = B.bin_ b Ir.Add px' kick in
                (* Aperture: rare loss. *)
                let out = B.bin_ b Ir.Gt px' (Ir.Imm 8000) in
                B.if_ b out
                  ~then_:(fun () ->
                    B.bin b lost Ir.Add (Ir.Reg lost) (Ir.Imm 1);
                    B.store b "sx" (Ir.Reg p) (Ir.Imm (-1)))
                  ~else_:(fun () ->
                    B.store b "sx" (Ir.Reg p) x';
                    B.store b "spx" (Ir.Reg p) px'))));
    B.out b (Ir.Reg lost);
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some (Ir.Reg lost));
    B.finish b
  in
  B.program
    ~arrays:[ ("sx", particles); ("spx", particles) ]
    ~main:"main"
    (main :: rotate :: sext_kick
    :: Coldlib.standard ~array_name:"sx" ~size:particles ~prefix:"lib_")

(* apsi: pollutant transport — several distinct stencil phases plus a
   tridiagonal solve, i.e. many separate unrollable loops (the paper's
   apsi shows the biggest path-length jump after unrolling). *)
let apsi ~scale =
  let flux3 =
    let b = B.create ~name:"flux3" ~nparams:3 in
    let w = B.bin_ b Ir.And (B.param b 0) (Ir.Imm 15) in
    let d = B.bin_ b Ir.Sub (B.param b 1) (B.param b 2) in
    let f = B.bin_ b Ir.Shr (B.bin_ b Ir.Mul w d) (Ir.Imm 5) in
    B.ret b (Some f);
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let lcg = K.lcg_init b ~seed:79 in
    K.fill_random b lcg ~array_name:"c" ~size:grid;
    K.fill_random b lcg ~array_name:"wind" ~size:grid;
    let t = B.reg b in
    B.for_ b t ~from:(Ir.Imm 0) ~below:(Ir.Imm (6 * scale)) (fun () ->
        let i = B.reg b in
        (* Advection. *)
        B.for_ b i ~from:(Ir.Imm 1) ~below:(Ir.Imm grid) (fun () ->
            let w = B.load_ b "wind" (Ir.Reg i) in
            let up = B.load_ b "c" (B.bin_ b Ir.Sub (Ir.Reg i) (Ir.Imm 1)) in
            let here = B.load_ b "c" (Ir.Reg i) in
            let flux = B.call_ b "flux3" [ w; up; here ] in
            B.store b "c" (Ir.Reg i) (B.bin_ b Ir.Add here flux));
        (* Diffusion. *)
        B.for_ b i ~from:(Ir.Imm 1) ~below:(Ir.Imm (grid - 1)) (fun () ->
            let l = B.load_ b "c" (B.bin_ b Ir.Sub (Ir.Reg i) (Ir.Imm 1)) in
            let r = B.load_ b "c" (B.bin_ b Ir.Add (Ir.Reg i) (Ir.Imm 1)) in
            let m = B.load_ b "c" (Ir.Reg i) in
            let lap = B.bin_ b Ir.Sub (B.bin_ b Ir.Add l r) (B.bin_ b Ir.Shl m (Ir.Imm 1)) in
            B.store b "c" (Ir.Reg i) (B.bin_ b Ir.Add m (B.bin_ b Ir.Shr lap (Ir.Imm 3))));
        (* Deposition: per-cell decay. *)
        B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm grid) (fun () ->
            let m = B.load_ b "c" (Ir.Reg i) in
            B.store b "c" (Ir.Reg i) (B.bin_ b Ir.Sub m (B.bin_ b Ir.Shr m (Ir.Imm 6))));
        (* Forward sweep of a tridiagonal solve. *)
        B.for_ b i ~from:(Ir.Imm 1) ~below:(Ir.Imm dim) (fun () ->
            let prev = B.load_ b "tmp" (B.bin_ b Ir.Sub (Ir.Reg i) (Ir.Imm 1)) in
            let src = B.load_ b "c" (Ir.Reg i) in
            B.store b "tmp" (Ir.Reg i)
              (B.bin_ b Ir.Add src (B.bin_ b Ir.Shr prev (Ir.Imm 1))));
        (* Backward substitution. *)
        let j = B.reg b in
        B.for_ b j ~from:(Ir.Imm 1) ~below:(Ir.Imm dim) (fun () ->
            let i' = B.bin_ b Ir.Sub (Ir.Imm (dim - 1)) (Ir.Reg j) in
            let nxt = B.load_ b "tmp" (B.bin_ b Ir.Add i' (Ir.Imm 1)) in
            let cur = B.load_ b "tmp" i' in
            B.store b "tmp" i' (B.bin_ b Ir.Sub cur (B.bin_ b Ir.Shr nxt (Ir.Imm 2)))));
    let check = B.load_ b "c" (Ir.Imm 99) in
    B.out b check;
    Coldlib.validate b ~prefix:"lib_";
    B.ret b (Some check);
    B.finish b
  in
  B.program
    ~arrays:[ ("c", grid); ("wind", grid); ("tmp", dim) ]
    ~main:"main"
    (main :: flux3 :: Coldlib.standard ~array_name:"c" ~size:grid ~prefix:"lib_")
