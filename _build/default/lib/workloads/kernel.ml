module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder

type lcg = Ir.reg

let lcg_init b ~seed =
  let r = B.reg b in
  B.mov b r (Ir.Imm (seed land 0x3fffffff));
  r

let lcg_next b r =
  B.bin b r Ir.Mul (Ir.Reg r) (Ir.Imm 1103515245);
  B.bin b r Ir.Add (Ir.Reg r) (Ir.Imm 12345);
  B.bin b r Ir.And (Ir.Reg r) (Ir.Imm 0x3fffffff);
  Ir.Reg r

let lcg_bits b r ~lo ~width =
  let v = lcg_next b r in
  let shifted = B.bin_ b Ir.Shr v (Ir.Imm lo) in
  B.bin_ b Ir.And shifted (Ir.Imm ((1 lsl width) - 1))

let fill_random b lcg ~array_name ~size =
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm size) (fun () ->
      let v = lcg_next b lcg in
      B.store b array_name (Ir.Reg i) v)

let fill_iota b ~array_name ~size =
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm size) (fun () ->
      B.store b array_name (Ir.Reg i) (Ir.Reg i))

let masked b v ~size =
  assert (size land (size - 1) = 0);
  B.bin_ b Ir.And v (Ir.Imm (size - 1))

let isqrt_newton b v =
  let x = B.reg b in
  let n = B.reg b in
  B.mov b n v;
  (* Guard against zero to keep the division safe. *)
  let is_zero = B.bin_ b Ir.Le (Ir.Reg n) (Ir.Imm 0) in
  B.when_ b is_zero (fun () -> B.mov b n (Ir.Imm 1));
  B.mov b x (Ir.Reg n);
  let k = B.reg b in
  B.for_ b k ~from:(Ir.Imm 0) ~below:(Ir.Imm 4) (fun () ->
      let q = B.bin_ b Ir.Div (Ir.Reg n) (Ir.Reg x) in
      B.bin b x Ir.Add (Ir.Reg x) q;
      B.bin b x Ir.Shr (Ir.Reg x) (Ir.Imm 1);
      let too_small = B.bin_ b Ir.Le (Ir.Reg x) (Ir.Imm 0) in
      B.when_ b too_small (fun () -> B.mov b x (Ir.Imm 1)));
  Ir.Reg x
