(** Cold library code shared by the workloads.

    Real SPEC benchmarks are dominated by code that rarely or never runs:
    option parsing, error paths, statistics, output formatting. These
    routines reproduce that structure — each workload links several and
    calls a few once (a validation pass at the end of [main]). Their
    static size also gives the inliner's 5%-of-program code-bloat budget
    (Section 7.3) a realistic base, exactly as it has on real programs.

    All routines operate on the array whose name is passed at
    construction time, so any workload can link them. *)

val checksum : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [checksum()] — a rotating XOR/add over the array. *)

val histogram : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [histogram(buckets)] — bucket counts with a division per element. *)

val minmax : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [minmax()] — returns max - min. *)

val insertion_sort : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [insertion_sort(n)] — sorts a prefix in place. *)

val crc : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [crc()] — a bitwise CRC-like mix, heavy on shifts. *)

val report : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [report(level)] — emits a few values via [Out]; branches on the
    verbosity level (an error-path stand-in that mostly does nothing). *)

val quicksort : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [quicksort(lo, hi)] — recursive; exercises the inliner's recursion
    refusal. *)

val format_digits : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [format_digits(v)] — decimal decomposition, emitted via [Out]. *)

val parse_flags : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [parse_flags(word)] — an option-parsing decision chain. *)

val table_rebuild : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [table_rebuild(seed)] — cold setup path with a nested loop. *)

val dump_window : array_name:string -> size:int -> Ppp_ir.Ir.routine
(** [dump_window(from)] — bounded debug dump. *)

val standard :
  array_name:string -> size:int -> prefix:string -> Ppp_ir.Ir.routine list
(** All of the above with their names prefixed (so two workload arrays
    can each have a library), e.g. [prefix = "lib_"]. *)

val validate : Ppp_ir.Builder.t -> prefix:string -> unit
(** Emit the once-per-run validation sequence: calls checksum, minmax and
    report. *)
