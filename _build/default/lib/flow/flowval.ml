module M = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = int M.t

let empty = M.empty

let add t ~f ~b ~delta =
  if delta = 0 then t
  else
    M.update (f, b)
      (function None -> Some delta | Some d -> Some (d + delta))
      t

let singleton ~f ~b ~delta = add empty ~f ~b ~delta
let union a b = M.union (fun _ d1 d2 -> Some (d1 + d2)) a b

let shift_branch t =
  M.fold (fun (f, b) delta acc -> add acc ~f ~b:(b + 1) ~delta) t empty

let map_f t ~f =
  M.fold
    (fun (freq, b) delta acc ->
      match f freq b with
      | Some freq' -> add acc ~f:freq' ~b ~delta
      | None -> acc)
    t empty

let iter t g = M.iter (fun (f, b) delta -> g ~f ~b ~delta) t
let fold t ~init ~f:g = M.fold (fun (f, b) delta acc -> g acc ~f ~b ~delta) t init
let find t ~f ~b = match M.find_opt (f, b) t with Some d -> d | None -> 0

let entries_decreasing_flow t =
  M.fold (fun (f, b) delta acc -> (f, b, delta) :: acc) t []
  |> List.sort (fun (f1, b1, _) (f2, b2, _) ->
         match compare (f2 * b2) (f1 * b1) with
         | 0 -> compare (f2, b2) (f1, b1)
         | c -> c)

let total_flow t ~metric =
  M.fold
    (fun (f, b) delta acc ->
      acc + (Ppp_profile.Metric.flow metric ~freq:f ~branches:b * delta))
    t 0

let cardinal = M.cardinal

let pp ppf t =
  Format.fprintf ppf "@[{";
  M.iter (fun (f, b) d -> Format.fprintf ppf "(%d,%d)->%d;@ " f b d) t;
  Format.fprintf ppf "}@]"
