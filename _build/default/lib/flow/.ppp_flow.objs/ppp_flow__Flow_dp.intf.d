lib/flow/flow_dp.mli: Flowval Ppp_cfg Ppp_profile Routine_ctx
