lib/flow/flowval.ml: Format List Map Ppp_profile
