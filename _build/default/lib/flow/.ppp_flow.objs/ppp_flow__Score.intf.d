lib/flow/score.mli: Ppp_ir Ppp_profile
