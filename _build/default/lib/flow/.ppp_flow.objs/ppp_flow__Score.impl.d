lib/flow/score.ml: Hashtbl List Ppp_profile
