lib/flow/routine_ctx.ml: Array List Ppp_cfg Ppp_ir Ppp_profile
