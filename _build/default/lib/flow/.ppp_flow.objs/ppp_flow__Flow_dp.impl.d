lib/flow/flow_dp.ml: Array Flowval Hashtbl List Ppp_cfg Routine_ctx
