lib/flow/flowval.mli: Format Ppp_profile
