lib/flow/routine_ctx.mli: Ppp_cfg Ppp_ir Ppp_profile
