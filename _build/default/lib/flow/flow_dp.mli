(** The appendix's dynamic-programming flow profiles and hot-path
    reconstruction, under the branch-flow metric.

    [Definite] flow is the minimum flow an edge profile guarantees on a
    path (Figure 14); [Potential] flow is the maximum it allows
    (Figure 15). {!reconstruct} is Figure 16 — including the confirmed
    fix: an edge's flow-value entry must match both the current frequency
    {e and} the current branch count — and, for potential flow, the two
    modifications listed below Figure 16 ([g ≥ f] selection and recursing
    with [g]). *)

type kind = Definite | Potential

type t

val compute : Routine_ctx.t -> kind -> t

val kind : t -> kind
val at_entry : t -> Flowval.t
(** [M\[entry\]]: flow values of whole entry-to-exit paths. *)

val at_node : t -> Ppp_cfg.Graph.node -> Flowval.t
val at_edge : t -> Ppp_cfg.Graph.edge -> Flowval.t

val total : t -> metric:Ppp_profile.Metric.t -> int
(** Total flow at the entry; for [Definite] this is the routine's
    definite flow [DF(P)] — the numerator of edge-profile coverage
    (Section 6.2). *)

val reconstruct :
  t -> cutoff:int -> max_paths:int -> (Ppp_cfg.Graph.edge list * int * int) list
(** [reconstruct t ~cutoff ~max_paths] enumerates DAG paths whose flow
    value satisfies [f*b > cutoff], in decreasing [f*b] order, as
    [(dag_path, f, b)] triples ([f] is the path's unit-metric flow value).
    Stops after [max_paths] paths. For [Potential] the [g >= f]
    relaxation can make the search superlinear, so it is additionally
    bounded by an exploration budget of [1000 * max_paths] node visits;
    use {!potential_hot_paths} when completeness up to a size cap
    matters. *)

val potential_hot_paths :
  Routine_ctx.t -> max_paths:int -> (Ppp_cfg.Graph.edge list * int * int) list
(** The hottest paths of the potential-flow profile, computed by
    bottleneck thresholding rather than Figure 16's search: the potential
    of a path is the minimum frequency along it, so the paths with
    potential at least [T] are exactly the complete paths of the
    subgraph of edges with frequency at least [T]. [T] is lowered over
    the distinct edge frequencies as far as possible while the path count
    stays within [max_paths]; the result lists [(dag_path, potential,
    branches)] for every path of that subgraph. Equivalent to (a capped)
    Figure 16 up to order, but worst-case polynomial. *)

(** {2 Closed forms for concrete paths} *)

val definite_of_path : Routine_ctx.t -> Ppp_cfg.Graph.edge list -> int
(** Unit-metric definite flow of a concrete DAG path:
    [max 0 (F - Σ_e (flow(tgt e) - freq e))]. Multiply by the path's
    branch count for branch flow. *)

val potential_of_path : Routine_ctx.t -> Ppp_cfg.Graph.edge list -> int
(** Unit-metric potential flow: [min F (min_e freq e)]. *)
