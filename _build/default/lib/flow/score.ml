module Path_profile = Ppp_profile.Path_profile
module Path = Ppp_profile.Path
module Metric = Ppp_profile.Metric

type est = { routine : string; path : Path.t; flow : int }

let hot_actual ~actual ~views ~metric ~threshold =
  Path_profile.hot_paths actual ~views ~metric ~threshold

let accuracy ~actual ~views ~metric ~threshold ~estimated =
  let hot = hot_actual ~actual ~views ~metric ~threshold in
  match hot with
  | [] -> 1.0
  | _ ->
      let k = List.length hot in
      let top_estimated =
        List.stable_sort
          (fun a b ->
            match compare b.flow a.flow with
            | 0 -> compare (a.routine, a.path) (b.routine, b.path)
            | c -> c)
          estimated
        |> List.filteri (fun i _ -> i < k)
      in
      let est_set = Hashtbl.create (2 * k) in
      List.iter (fun e -> Hashtbl.replace est_set (e.routine, e.path) ()) top_estimated;
      let hot_flow, matched_flow =
        List.fold_left
          (fun (total, matched) (name, p, flow) ->
            let matched =
              if Hashtbl.mem est_set (name, p) then matched + flow else matched
            in
            (total + flow, matched))
          (0, 0) hot
      in
      if hot_flow = 0 then 1.0
      else float_of_int matched_flow /. float_of_int hot_flow

let coverage ~total_actual_flow ~measured_actual_flow ~definite_uninstr ~overcount =
  if total_actual_flow = 0 then 1.0
  else
    let n = measured_actual_flow + definite_uninstr - overcount in
    float_of_int (max 0 n) /. float_of_int total_actual_flow
