(** Accuracy and coverage of estimated path profiles (Section 6). *)

type est = {
  routine : string;
  path : Ppp_profile.Path.t;
  flow : int;  (** estimated flow under the chosen metric *)
}

val accuracy :
  actual:Ppp_profile.Path_profile.program ->
  views:(string -> Ppp_ir.Cfg_view.t) ->
  metric:Ppp_profile.Metric.t ->
  threshold:float ->
  estimated:est list ->
  float
(** Wall's weight-matching scheme (Section 6.1): identify the actual hot
    paths [H_actual] (flow at least [threshold] of total actual flow),
    pick the [|H_actual|] hottest estimated paths as [H_estimated], and
    return [F(H_estimated ∩ H_actual) / F(H_actual)] with flows taken
    from the actual profile. 1.0 when there are no hot paths. *)

val hot_actual :
  actual:Ppp_profile.Path_profile.program ->
  views:(string -> Ppp_ir.Cfg_view.t) ->
  metric:Ppp_profile.Metric.t ->
  threshold:float ->
  (string * Ppp_profile.Path.t * int) list
(** The actual hot paths with their flows, hottest first. *)

val coverage :
  total_actual_flow:int ->
  measured_actual_flow:int ->
  definite_uninstr:int ->
  overcount:int ->
  float
(** Section 6.2:
    [(F(P_instr) + DF(P_uninstr) - F_overcount) / F(P)]. With no
    instrumented paths and no overcount this reduces to edge-profile
    coverage [DF(P) / F(P)]. 1.0 when total flow is zero. *)
