(** Flow values: the multisets [(f, b) ↦ Δ] of the appendix algorithms,
    where [f] is a frequency, [b] a branch count, and [Δ] the number of
    paths sharing that pair. The [⊎] operator adds multiplicities. *)

type t

val empty : t
val singleton : f:int -> b:int -> delta:int -> t
val add : t -> f:int -> b:int -> delta:int -> t
val union : t -> t -> t
(** The appendix's [⊎]. *)

val shift_branch : t -> t
(** [(f, b) ↦ Δ] becomes [(f, b+1) ↦ Δ]: crossing a branch edge. *)

val map_f : t -> f:(int -> int -> int option) -> t
(** [map_f t ~f] rewrites each entry's frequency with [f freq branches];
    [None] drops the entry (the appendix's conditional comprehensions). *)

val iter : t -> (f:int -> b:int -> delta:int -> unit) -> unit
val fold : t -> init:'a -> f:('a -> f:int -> b:int -> delta:int -> 'a) -> 'a
val find : t -> f:int -> b:int -> int
(** The multiplicity of [(f, b)], 0 when absent. *)

val entries_decreasing_flow : t -> (int * int * int) list
(** All [(f, b, Δ)] sorted by decreasing [f*b] (the order Figure 16's
    main loop wants). *)

val total_flow : t -> metric:Ppp_profile.Metric.t -> int
(** [Σ F(f,b)·Δ] under the metric ([f·Δ] or [f·b·Δ]). *)

val cardinal : t -> int
val pp : Format.formatter -> t -> unit
