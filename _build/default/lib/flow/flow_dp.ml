module Graph = Ppp_cfg.Graph

type kind = Definite | Potential

type t = {
  ctx : Routine_ctx.t;
  kind : kind;
  node_vals : Flowval.t array;
  edge_vals : Flowval.t array;
}

let compute ctx kind =
  let g = Routine_ctx.graph ctx in
  let exit = Routine_ctx.exit ctx in
  let node_vals = Array.make (Graph.num_nodes g) Flowval.empty in
  let edge_vals = Array.make (max 1 (Graph.num_edges g)) Flowval.empty in
  node_vals.(exit) <- Flowval.singleton ~f:(Routine_ctx.total_freq ctx) ~b:0 ~delta:1;
  let process v =
    if v <> exit then begin
      let acc = ref Flowval.empty in
      List.iter
        (fun e ->
          let tgt = Graph.dst g e in
          let ev =
            match kind with
            | Definite ->
                let f_s = Routine_ctx.node_flow ctx tgt - Routine_ctx.freq ctx e in
                Flowval.map_f node_vals.(tgt) ~f:(fun f _b ->
                    if f > f_s then Some (f - f_s) else None)
            | Potential ->
                let fe = Routine_ctx.freq ctx e in
                Flowval.map_f node_vals.(tgt) ~f:(fun f _b -> Some (min f fe))
          in
          edge_vals.(e) <- ev;
          let shifted =
            if Routine_ctx.is_branch ctx e then Flowval.shift_branch ev else ev
          in
          acc := Flowval.union !acc shifted)
        (Graph.out_edges g v);
      node_vals.(v) <- !acc
    end
  in
  List.iter process (List.rev (Ppp_cfg.Dag.topological (Routine_ctx.dag ctx)));
  { ctx; kind; node_vals; edge_vals }

let kind t = t.kind
let at_entry t = t.node_vals.(Routine_ctx.entry t.ctx)
let at_node t v = t.node_vals.(v)
let at_edge t e = t.edge_vals.(e)
let total t ~metric = Flowval.total_flow (at_entry t) ~metric

exception Done

let reconstruct t ~cutoff ~max_paths =
  let ctx = t.ctx in
  let g = Routine_ctx.graph ctx in
  let exit = Routine_ctx.exit ctx in
  let results = ref [] in
  let emitted = ref 0 in
  (* For potential flow the [g >= f] relaxation makes the Δ debits
     meaningless (a hot extension would absorb the budget intended for a
     cooler path), so Potential explores every candidate and deduplicates
     emitted paths instead — bounded by a visit budget since that search
     can be superlinear. *)
  let budget = ref (1000 * max_paths) in
  let seen = Hashtbl.create 64 in
  let pf path =
    List.fold_left
      (fun acc e -> min acc (Routine_ctx.freq ctx e))
      (Routine_ctx.total_freq ctx) path
  in
  let emit path f' b0 =
    let record triple =
      results := triple :: !results;
      incr emitted;
      if !emitted >= max_paths then raise Done
    in
    match t.kind with
    | Definite -> record (path, f', b0)
    | Potential ->
        if not (Hashtbl.mem seen path) then begin
          Hashtbl.replace seen path ();
          (* Report the exact potential of the concrete path rather than
             the (possibly lower) entry value that led here. *)
          record (path, pf path, b0)
        end
  in
  (* [f'] is the path's flow value fixed at the entry; [b0] its total
     branch count. [f]/[b] are the running requirement as we walk down. *)
  let rec enumerate v path_rev f b f' b0 delta =
    decr budget;
    if !budget <= 0 then raise Done;
    if v = exit then emit (List.rev path_rev) f' b0
    else begin
      let remaining = ref delta in
      let try_candidate e g_val c d =
        if (!remaining > 0 || t.kind = Potential) && d > 0 then begin
          let debit = min !remaining d in
          let child_f =
            match t.kind with
            | Definite ->
                let tgt = Graph.dst g e in
                f + Routine_ctx.node_flow ctx tgt - Routine_ctx.freq ctx e
            | Potential -> g_val
          in
          enumerate (Graph.dst g e) (e :: path_rev) child_f c f' b0 debit;
          remaining := !remaining - debit
        end
      in
      List.iter
        (fun e ->
          let c = if Routine_ctx.is_branch ctx e then b - 1 else b in
          if c >= 0 then begin
            match t.kind with
            | Definite ->
                let d = Flowval.find t.edge_vals.(e) ~f ~b:c in
                try_candidate e f c d
            | Potential ->
                (* Modified selection: any entry with g >= f, largest
                   first so the hottest extension is explored first. *)
                let entries =
                  Flowval.fold t.edge_vals.(e) ~init:[]
                    ~f:(fun acc ~f:gv ~b:bv ~delta:d ->
                      if bv = c && gv >= f then (gv, d) :: acc else acc)
                  |> List.sort (fun (a, _) (b, _) -> compare b a)
                in
                List.iter (fun (gv, d) -> try_candidate e gv c d) entries
          end)
        (Graph.out_edges g v)
    end
  in
  (try
     List.iter
       (fun (f, b, delta) ->
         if f * b > cutoff then
           enumerate (Routine_ctx.entry ctx) [] f b f b delta)
       (Flowval.entries_decreasing_flow (at_entry t))
   with Done -> ());
  List.rev !results

let definite_of_path ctx path =
  let g = Routine_ctx.graph ctx in
  let deficit =
    List.fold_left
      (fun acc e ->
        acc + Routine_ctx.node_flow ctx (Graph.dst g e) - Routine_ctx.freq ctx e)
      0 path
  in
  max 0 (Routine_ctx.total_freq ctx - deficit)

let potential_of_path ctx path =
  List.fold_left
    (fun acc e -> min acc (Routine_ctx.freq ctx e))
    (Routine_ctx.total_freq ctx)
    path

let potential_hot_paths ctx ~max_paths =
  let g = Routine_ctx.graph ctx in
  let entry = Routine_ctx.entry ctx in
  let exit = Routine_ctx.exit ctx in
  let nedges = Graph.num_edges g in
  if nedges = 0 then []
  else begin
    (* The subgraph of edges with frequency >= t, pruned to edges on a
       complete entry-to-exit path. Returns None if entry cannot reach
       exit at all at this threshold. *)
    let qualifying t =
      let keep = Array.init nedges (fun e -> Routine_ctx.freq ctx e >= t) in
      let n = Graph.num_nodes g in
      let fwd = Array.make n false in
      let rec down v =
        if not fwd.(v) then begin
          fwd.(v) <- true;
          List.iter (fun e -> if keep.(e) then down (Graph.dst g e)) (Graph.out_edges g v)
        end
      in
      down entry;
      let bwd = Array.make n false in
      let rec up v =
        if not bwd.(v) then begin
          bwd.(v) <- true;
          List.iter (fun e -> if keep.(e) then up (Graph.src g e)) (Graph.in_edges g v)
        end
      in
      up exit;
      Graph.iter_edges g (fun e ->
          if keep.(e) && not (fwd.(Graph.src g e) && bwd.(Graph.dst g e)) then
            keep.(e) <- false);
      if fwd.(exit) then Some keep else None
    in
    (* Count complete paths in a qualifying subgraph, saturating. *)
    let count keep =
      let n = Graph.num_nodes g in
      let c = Array.make n 0 in
      c.(exit) <- 1;
      List.iter
        (fun v ->
          if v <> exit then
            c.(v) <-
              List.fold_left
                (fun acc e ->
                  if keep.(e) then min (max_paths + 1) (acc + c.(Graph.dst g e))
                  else acc)
                0 (Graph.out_edges g v))
        (List.rev (Ppp_cfg.Dag.topological (Routine_ctx.dag ctx)));
      c.(entry)
    in
    (* Lower the threshold over the distinct frequencies while the count
       stays within the cap. *)
    let freqs =
      Graph.fold_edges g ~init:[] ~f:(fun acc e -> Routine_ctx.freq ctx e :: acc)
      |> List.filter (fun f -> f > 0)
      |> List.sort_uniq compare |> List.rev
    in
    let best = ref None in
    (try
       List.iter
         (fun t ->
           match qualifying t with
           | None -> ()
           | Some keep ->
               if count keep <= max_paths then best := Some keep else raise Exit)
         freqs
     with Exit -> ());
    match !best with
    | None -> []
    | Some keep ->
        (* Enumerate every complete path of the kept subgraph. *)
        let results = ref [] in
        let rec walk v path_rev =
          if v = exit then begin
            let path = List.rev path_rev in
            let pf = potential_of_path ctx path in
            let b =
              List.fold_left
                (fun acc e -> if Routine_ctx.is_branch ctx e then acc + 1 else acc)
                0 path
            in
            results := (path, pf, b) :: !results
          end
          else
            List.iter
              (fun e -> if keep.(e) then walk (Graph.dst g e) (e :: path_rev))
              (Graph.out_edges g v)
        in
        walk entry [];
        List.rev !results
  end
