(** Graphviz output for debugging and the [pppc dot] command. *)

val pp :
  ?node_label:(Graph.node -> string) ->
  ?edge_label:(Graph.edge -> string) ->
  ?name:string ->
  Format.formatter ->
  Graph.t ->
  unit
(** Print a [digraph]. Default node labels are the node numbers; default
    edge labels are empty. *)
