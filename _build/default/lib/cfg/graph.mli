(** Directed multigraphs with integer nodes and explicit edge identifiers.

    This is the structural substrate for all control-flow analyses: nodes
    stand for basic blocks (plus a virtual exit), and edges for control
    transfers. Multigraphs are required because DAG conversion (see
    {!Dag}) may add several dummy edges between the same pair of nodes. *)

type node = int
(** Nodes are dense integers in [[0, num_nodes)]. *)

type edge = int
(** Edges are dense integers in [[0, num_edges)]. *)

type t
(** A mutable directed multigraph. *)

val create : unit -> t
(** [create ()] is an empty graph. *)

val add_node : t -> node
(** [add_node g] adds a fresh node and returns its id. *)

val add_nodes : t -> int -> unit
(** [add_nodes g n] adds [n] fresh nodes. *)

val add_edge : t -> node -> node -> edge
(** [add_edge g u v] adds a new edge [u -> v] and returns its id.
    Parallel edges are permitted. *)

val num_nodes : t -> int
val num_edges : t -> int

val src : t -> edge -> node
val dst : t -> edge -> node

val out_edges : t -> node -> edge list
(** Outgoing edges of a node, in insertion order. *)

val in_edges : t -> node -> edge list
(** Incoming edges of a node, in insertion order. *)

val out_degree : t -> node -> int
val in_degree : t -> node -> int

val succs : t -> node -> node list
(** Successor nodes, one entry per outgoing edge (may repeat). *)

val preds : t -> node -> node list
(** Predecessor nodes, one entry per incoming edge (may repeat). *)

val iter_edges : t -> (edge -> unit) -> unit
(** Iterate over all edge ids in increasing order. *)

val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a

val iter_nodes : t -> (node -> unit) -> unit

val find_edge : t -> node -> node -> edge option
(** [find_edge g u v] is the first edge [u -> v], if any. *)

val copy : t -> t
(** Structural copy; edge and node ids are preserved. *)

val pp : Format.formatter -> t -> unit
(** Debug printer listing every edge as [src->dst]. *)
