type t = {
  root : Graph.node;
  idom : int array; (* node -> immediate dominator, -1 if none/unreachable *)
  rpo_index : int array; (* node -> position in reverse postorder, -1 if unreachable *)
}

let compute g ~root =
  let n = Graph.num_nodes g in
  let rpo = Order.reverse_postorder g root in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i v -> rpo_index.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let intersect u v =
    (* Walk both fingers up the (partial) dominator tree until they meet;
       comparisons are on reverse-postorder positions. *)
    let u = ref u and v = ref v in
    while !u <> !v do
      while rpo_index.(!u) > rpo_index.(!v) do
        u := idom.(!u)
      done;
      while rpo_index.(!v) > rpo_index.(!u) do
        v := idom.(!v)
      done
    done;
    !u
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> root then begin
          let processed_preds =
            List.filter
              (fun p -> rpo_index.(p) >= 0 && idom.(p) >= 0)
              (Graph.preds g v)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { root; idom; rpo_index }

let reachable t v = t.rpo_index.(v) >= 0

let idom t v =
  if v = t.root || t.idom.(v) < 0 then None else Some t.idom.(v)

let dominates t u v =
  if not (reachable t u && reachable t v) then false
  else begin
    let rec walk w = if w = u then true else if w = t.root then false else walk t.idom.(w) in
    walk v
  end
