let pp ?node_label ?edge_label ?(name = "cfg") ppf g =
  let node_label = Option.value node_label ~default:string_of_int in
  let edge_label = Option.value edge_label ~default:(fun _ -> "") in
  Format.fprintf ppf "@[<v 2>digraph %s {@," name;
  Graph.iter_nodes g (fun v ->
      Format.fprintf ppf "n%d [label=%S];@," v (node_label v));
  Graph.iter_edges g (fun e ->
      let label = edge_label e in
      if label = "" then
        Format.fprintf ppf "n%d -> n%d;@," (Graph.src g e) (Graph.dst g e)
      else
        Format.fprintf ppf "n%d -> n%d [label=%S];@," (Graph.src g e)
          (Graph.dst g e) label);
  Format.fprintf ppf "@]@,}@."
