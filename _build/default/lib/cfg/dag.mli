(** CFG → DAG conversion for path profiling (Ball–Larus, Figure 1(a–b)).

    Each breakable edge [tail -> header] is removed; a dummy edge
    [tail -> exit] is added for it, and a dummy edge [entry -> header] is
    added {e once per distinct header}. The entry dummy is shared because
    a path beginning at a loop header is the same path no matter which
    back edge restarted it, whereas a path ending in a back edge is
    identified by that back edge. With this convention DAG paths
    (entry to exit) correspond one-to-one with the acyclic CFG paths the
    interpreter traces. Node identifiers are shared with the source
    graph. *)

type provenance =
  | Original of Graph.edge  (** the same edge of the source CFG *)
  | Dummy_entry of Graph.node
      (** [entry -> header] dummy, shared by all back edges into [header] *)
  | Dummy_exit of Graph.edge
      (** [tail -> exit] dummy for the given broken edge *)

type t

val convert :
  Graph.t -> entry:Graph.node -> exit:Graph.node -> break:Graph.edge list -> t
(** [convert g ~entry ~exit ~break] builds the DAG. [break] must contain
    every edge on a cycle (typically {!Loop.breakable_edges}).

    @raise Invalid_argument if breaking the given edges leaves a cycle. *)

val dag : t -> Graph.t
val entry : t -> Graph.node
val exit : t -> Graph.node

val provenance : t -> Graph.edge -> provenance
(** Provenance of a DAG edge. *)

val of_original : t -> Graph.edge -> Graph.edge option
(** The DAG edge corresponding to a CFG edge; [None] if it was broken. *)

val exit_dummy : t -> Graph.edge -> Graph.edge option
(** The [tail -> exit] dummy of a broken edge. *)

val entry_dummy : t -> Graph.node -> Graph.edge option
(** The shared [entry -> header] dummy of a header. [None] when the
    header {e is} the entry: a path restarting at the entry block is the
    same path as one started by an invocation, so no dummy is needed (and
    one would be a self-loop). *)

val header_of_broken : t -> Graph.edge -> Graph.node option
(** The header (destination in the original CFG) of a broken edge. *)

val backs_of_header : t -> Graph.node -> Graph.edge list
(** The broken edges whose header is the given node. *)

val broken : t -> Graph.edge list
(** The edges that were broken, in the order given to {!convert}. *)

val edge_freq : t -> cfg_freq:(Graph.edge -> int) -> Graph.edge -> int
(** Lift a CFG edge profile onto DAG edges: an original edge keeps its
    frequency, an exit dummy inherits its broken edge's frequency, and an
    entry dummy gets the sum over the back edges into its header. *)

val dag_path_of_cfg_path : t -> Graph.edge list -> Graph.edge list
(** Translate an acyclic CFG path (as traced by the interpreter: ends
    with a return edge or a back edge) into the corresponding
    entry-to-exit DAG path. *)

val cfg_path_of_dag_path : t -> Graph.edge list -> Graph.edge list
(** Inverse of {!dag_path_of_cfg_path}: entry dummies disappear, an exit
    dummy becomes its back edge. *)

val topological : t -> Graph.node list
(** A topological order of the DAG's nodes. *)
