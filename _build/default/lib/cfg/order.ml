let reachable g root =
  let seen = Array.make (Graph.num_nodes g) false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go (Graph.succs g v)
    end
  in
  go root;
  seen

let co_reachable g sink =
  let seen = Array.make (Graph.num_nodes g) false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go (Graph.preds g v)
    end
  in
  go sink;
  seen

(* Iterative DFS that records postorder; the work stack holds the node and
   its remaining successor list so deep graphs cannot overflow the OCaml
   stack. *)
let postorder g root =
  let n = Graph.num_nodes g in
  if n = 0 then []
  else begin
    let seen = Array.make n false in
    let order = ref [] in
    let stack = ref [ (root, Graph.succs g root) ] in
    seen.(root) <- true;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, succs) :: rest -> (
          match succs with
          | [] ->
              order := v :: !order;
              stack := rest
          | w :: ws ->
              stack := (v, ws) :: rest;
              if not seen.(w) then begin
                seen.(w) <- true;
                stack := (w, Graph.succs g w) :: !stack
              end)
    done;
    List.rev !order
  end

let reverse_postorder g root = List.rev (postorder g root)

let topological g =
  let n = Graph.num_nodes g in
  let indeg = Array.make n 0 in
  Graph.iter_edges g (fun e -> indeg.(Graph.dst g e) <- indeg.(Graph.dst g e) + 1);
  let queue = Queue.create () in
  Graph.iter_nodes g (fun v -> if indeg.(v) = 0 then Queue.add v queue);
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    order := v :: !order;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (Graph.succs g v)
  done;
  if !count = n then Some (List.rev !order) else None

let is_dag g = Option.is_some (topological g)

type color = White | Grey | Black

let retreating_edges g root =
  let n = Graph.num_nodes g in
  if n = 0 then []
  else begin
    let color = Array.make n White in
    let result = ref [] in
    let rec go v =
      color.(v) <- Grey;
      List.iter
        (fun e ->
          let w = Graph.dst g e in
          match color.(w) with
          | Grey -> result := e :: !result
          | White -> go w
          | Black -> ())
        (Graph.out_edges g v);
      color.(v) <- Black
    in
    go root;
    List.rev !result
  end
