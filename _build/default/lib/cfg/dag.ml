type provenance =
  | Original of Graph.edge
  | Dummy_entry of Graph.node
  | Dummy_exit of Graph.edge

type t = {
  dag : Graph.t;
  entry : Graph.node;
  exit : Graph.node;
  provenance : provenance array;
  original_to_dag : int array; (* CFG edge -> DAG edge, -1 if broken *)
  entry_dummies : (Graph.node * Graph.edge) list; (* header -> shared dummy *)
  exit_dummies : (Graph.edge * Graph.edge) list; (* broken edge -> dummy *)
  header_backs : (Graph.node * Graph.edge list) list; (* back edges per header *)
  broken : Graph.edge list;
  topo : Graph.node list;
}

let convert g ~entry ~exit ~break =
  let broken_set = Hashtbl.create 7 in
  List.iter (fun e -> Hashtbl.replace broken_set e ()) break;
  let dag = Graph.create () in
  Graph.add_nodes dag (Graph.num_nodes g);
  let provenance = ref [] in
  let original_to_dag = Array.make (max 1 (Graph.num_edges g)) (-1) in
  Graph.iter_edges g (fun e ->
      if not (Hashtbl.mem broken_set e) then begin
        let de = Graph.add_edge dag (Graph.src g e) (Graph.dst g e) in
        original_to_dag.(e) <- de;
        provenance := Original e :: !provenance
      end);
  let headers =
    List.sort_uniq compare (List.map (fun b -> Graph.dst g b) break)
  in
  let entry_dummies =
    List.filter_map
      (fun h ->
        if h = entry then None
        else begin
          let d = Graph.add_edge dag entry h in
          provenance := Dummy_entry h :: !provenance;
          Some (h, d)
        end)
      headers
  in
  let exit_dummies =
    List.map
      (fun b ->
        let d = Graph.add_edge dag (Graph.src g b) exit in
        provenance := Dummy_exit b :: !provenance;
        (b, d))
      break
  in
  let header_backs =
    List.map (fun h -> (h, List.filter (fun b -> Graph.dst g b = h) break)) headers
  in
  let provenance = Array.of_list (List.rev !provenance) in
  let topo =
    match Order.topological dag with
    | Some order -> order
    | None -> invalid_arg "Dag.convert: breaking the given edges leaves a cycle"
  in
  {
    dag;
    entry;
    exit;
    provenance;
    original_to_dag;
    entry_dummies;
    exit_dummies;
    header_backs;
    broken = break;
    topo;
  }

let dag t = t.dag
let entry t = t.entry
let exit t = t.exit
let provenance t e = t.provenance.(e)

let of_original t e =
  if e >= Array.length t.original_to_dag || t.original_to_dag.(e) < 0 then None
  else Some t.original_to_dag.(e)

let entry_dummy t h = List.assoc_opt h t.entry_dummies

let exit_dummy t b = List.assoc_opt b t.exit_dummies

let header_of_broken t b =
  List.find_map
    (fun (h, backs) -> if List.mem b backs then Some h else None)
    t.header_backs

let backs_of_header t h =
  match List.assoc_opt h t.header_backs with Some backs -> backs | None -> []

let broken t = t.broken

let edge_freq t ~cfg_freq e =
  match t.provenance.(e) with
  | Original o -> cfg_freq o
  | Dummy_exit b -> cfg_freq b
  | Dummy_entry h ->
      let backs = try List.assoc h t.header_backs with Not_found -> [] in
      List.fold_left (fun acc b -> acc + cfg_freq b) 0 backs

let dag_path_of_cfg_path t cfg_path =
  match cfg_path with
  | [] -> invalid_arg "Dag.dag_path_of_cfg_path: empty path"
  | first :: _ ->
      let rec translate = function
        | [] -> []
        | [ last ] -> (
            match of_original t last with
            | Some de -> [ de ]
            | None -> (
                match List.assoc_opt last t.exit_dummies with
                | Some d -> [ d ]
                | None -> invalid_arg "Dag.dag_path_of_cfg_path: unknown final edge"))
        | e :: rest -> (
            match of_original t e with
            | Some de -> de :: translate rest
            | None ->
                invalid_arg
                  "Dag.dag_path_of_cfg_path: broken edge in path interior")
      in
      let body = translate cfg_path in
      (* A path starting anywhere but the entry starts at a loop header. *)
      let start =
        match of_original t first with
        | Some de -> Graph.src t.dag de
        | None -> Graph.src t.dag (List.assoc first t.exit_dummies)
      in
      if start = t.entry then body
      else begin
        match entry_dummy t start with
        | Some d -> d :: body
        | None ->
            invalid_arg "Dag.dag_path_of_cfg_path: path starts at a non-header"
      end

let cfg_path_of_dag_path t dag_path =
  List.filter_map
    (fun e ->
      match t.provenance.(e) with
      | Original o -> Some o
      | Dummy_exit b -> Some b
      | Dummy_entry _ -> None)
    dag_path

let topological t = t.topo
