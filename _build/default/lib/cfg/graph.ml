type node = int
type edge = int

type t = {
  mutable n_nodes : int;
  mutable srcs : int array; (* edge id -> source node *)
  mutable dsts : int array; (* edge id -> destination node *)
  mutable n_edges : int;
  mutable out_adj : edge list array; (* node -> out edges, reversed *)
  mutable in_adj : edge list array; (* node -> in edges, reversed *)
}

let initial_capacity = 8

let create () =
  {
    n_nodes = 0;
    srcs = Array.make initial_capacity (-1);
    dsts = Array.make initial_capacity (-1);
    n_edges = 0;
    out_adj = Array.make initial_capacity [];
    in_adj = Array.make initial_capacity [];
  }

let grow arr used default =
  if used < Array.length arr then arr
  else begin
    let bigger = Array.make (2 * Array.length arr) default in
    Array.blit arr 0 bigger 0 used;
    bigger
  end

let add_node g =
  g.out_adj <- grow g.out_adj g.n_nodes [];
  g.in_adj <- grow g.in_adj g.n_nodes [];
  let id = g.n_nodes in
  g.out_adj.(id) <- [];
  g.in_adj.(id) <- [];
  g.n_nodes <- id + 1;
  id

let add_nodes g n =
  for _ = 1 to n do
    ignore (add_node g)
  done

let add_edge g u v =
  if u < 0 || u >= g.n_nodes || v < 0 || v >= g.n_nodes then
    invalid_arg "Graph.add_edge: node out of range";
  g.srcs <- grow g.srcs g.n_edges (-1);
  g.dsts <- grow g.dsts g.n_edges (-1);
  let id = g.n_edges in
  g.srcs.(id) <- u;
  g.dsts.(id) <- v;
  g.n_edges <- id + 1;
  g.out_adj.(u) <- id :: g.out_adj.(u);
  g.in_adj.(v) <- id :: g.in_adj.(v);
  id

let num_nodes g = g.n_nodes
let num_edges g = g.n_edges
let src g e = g.srcs.(e)
let dst g e = g.dsts.(e)
let out_edges g v = List.rev g.out_adj.(v)
let in_edges g v = List.rev g.in_adj.(v)
let out_degree g v = List.length g.out_adj.(v)
let in_degree g v = List.length g.in_adj.(v)
let succs g v = List.map (fun e -> g.dsts.(e)) (out_edges g v)
let preds g v = List.map (fun e -> g.srcs.(e)) (in_edges g v)

let iter_edges g f =
  for e = 0 to g.n_edges - 1 do
    f e
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun e -> acc := f !acc e);
  !acc

let iter_nodes g f =
  for v = 0 to g.n_nodes - 1 do
    f v
  done

let find_edge g u v = List.find_opt (fun e -> dst g e = v) (out_edges g u)

let copy g =
  {
    n_nodes = g.n_nodes;
    srcs = Array.copy g.srcs;
    dsts = Array.copy g.dsts;
    n_edges = g.n_edges;
    out_adj = Array.copy g.out_adj;
    in_adj = Array.copy g.in_adj;
  }

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges" g.n_nodes g.n_edges;
  iter_edges g (fun e ->
      Format.fprintf ppf "@,  e%d: %d -> %d" e g.srcs.(e) g.dsts.(e));
  Format.fprintf ppf "@]"
