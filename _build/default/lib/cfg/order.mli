(** Traversal orders and reachability over {!Graph.t}. *)

val reachable : Graph.t -> Graph.node -> bool array
(** [reachable g root] marks nodes reachable from [root] along edges. *)

val co_reachable : Graph.t -> Graph.node -> bool array
(** [co_reachable g sink] marks nodes from which [sink] is reachable. *)

val postorder : Graph.t -> Graph.node -> Graph.node list
(** DFS postorder of the nodes reachable from the root. Successors are
    visited in [out_edges] order. *)

val reverse_postorder : Graph.t -> Graph.node -> Graph.node list
(** Reverse DFS postorder; for a DAG this is a topological order. *)

val topological : Graph.t -> Graph.node list option
(** Kahn topological sort over the whole graph. [None] if the graph has a
    cycle. Unreachable nodes are included. *)

val is_dag : Graph.t -> bool

val retreating_edges : Graph.t -> Graph.node -> Graph.edge list
(** Edges [u -> v] such that [v] is an ancestor of [u] in (or equal to a
    node on the stack of) the DFS from the root: removing them leaves the
    reachable subgraph acyclic. For reducible graphs these are exactly the
    natural back edges. *)
