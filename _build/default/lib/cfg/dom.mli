(** Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm). *)

type t

val compute : Graph.t -> root:Graph.node -> t
(** Immediate dominators of all nodes reachable from [root]. *)

val idom : t -> Graph.node -> Graph.node option
(** Immediate dominator; [None] for the root and unreachable nodes. *)

val dominates : t -> Graph.node -> Graph.node -> bool
(** [dominates t u v] iff [u] dominates [v] (reflexive). Nodes unreachable
    from the root dominate nothing and are dominated by nothing. *)

val reachable : t -> Graph.node -> bool
