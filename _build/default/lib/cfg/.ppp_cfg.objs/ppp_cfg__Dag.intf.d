lib/cfg/dag.mli: Graph
