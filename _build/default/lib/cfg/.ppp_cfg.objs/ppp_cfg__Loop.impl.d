lib/cfg/loop.ml: Array Dom Graph Hashtbl List Order
