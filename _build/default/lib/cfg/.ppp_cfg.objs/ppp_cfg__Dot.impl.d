lib/cfg/dot.ml: Format Graph Option
