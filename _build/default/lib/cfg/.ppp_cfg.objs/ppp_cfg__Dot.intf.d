lib/cfg/dot.mli: Format Graph
