lib/cfg/graph.ml: Array Format List
