lib/cfg/order.mli: Graph
