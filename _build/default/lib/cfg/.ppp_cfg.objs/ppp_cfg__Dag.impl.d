lib/cfg/dag.ml: Array Graph Hashtbl List Order
