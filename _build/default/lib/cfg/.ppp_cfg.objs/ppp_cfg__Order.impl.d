lib/cfg/order.ml: Array Graph List Option Queue
