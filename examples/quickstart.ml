(* Quickstart: the paper's Figure 1 example, end to end.

   Builds the routine of Figure 1(a), walks through DAG conversion, path
   numbering, event counting and instrumentation placement, then runs the
   instrumented program and decodes the measured path profile.

   Run with: dune exec examples/quickstart.exe *)

module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder
module Cfg_view = Ppp_ir.Cfg_view
module Graph = Ppp_cfg.Graph
module Interp = Ppp_interp.Interp
module Edge_profile = Ppp_profile.Edge_profile
module Routine_ctx = Ppp_flow.Routine_ctx
module Numbering = Ppp_core.Numbering
module Instrument = Ppp_core.Instrument
module Config = Ppp_core.Config
module Instr_rt = Ppp_interp.Instr_rt

(* Figure 1(a): A branches to B/C, both reach D, D branches to E/F, E
   falls into F, and F either loops back to A or exits. We drive the
   branches from a little counter so different paths actually execute. *)
let program =
  let b = B.create ~name:"main" ~nparams:0 in
  let i = B.reg b in
  let acc = B.reg b in
  B.mov b acc (Ir.Imm 0);
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 100) (fun () ->
      (* block A/B/C: take B on even iterations *)
      let even = B.bin_ b Ir.And (Ir.Reg i) (Ir.Imm 1) in
      let is_even = B.bin_ b Ir.Eq even (Ir.Imm 0) in
      B.if_ b is_even
        ~then_:(fun () -> B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 1))
        ~else_:(fun () -> B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 2));
      (* block D/E/F: take E when acc is small *)
      let small = B.bin_ b Ir.Lt (Ir.Reg acc) (Ir.Imm 50) in
      B.when_ b small (fun () -> B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 3)));
  B.out b (Ir.Reg acc);
  B.ret b (Some (Ir.Reg acc));
  B.program ~main:"main" [ B.finish b ]

let () =
  Format.printf "=== 1. The routine ===@.%s@." (Ppp_ir.Pp_ir.to_string program);

  (* Run once to get the edge profile ("self" advice, Section 7.2). *)
  let base = Interp.run program in
  let ep = Option.get base.Interp.edge_profile in
  Format.printf "=== 2. Base run ===@.output = %s, base cost = %d cycles@.@."
    (String.concat "," (List.map string_of_int base.Interp.output))
    base.Interp.base_cost;

  (* Look at the numbering the instrumenter will use. *)
  let r = Ir.routine program "main" in
  let view = Cfg_view.of_routine r in
  let ctx = Routine_ctx.make view (Edge_profile.routine ep "main") in
  let hot = Ppp_core.Cold.all_hot ctx in
  let nb = Numbering.compute ctx ~hot ~order:Numbering.Ball_larus in
  Format.printf "=== 3. Path numbering (Figure 2) ===@.";
  Format.printf "the DAG has N = %d acyclic paths; every path sums its edge values@."
    (Numbering.num_paths nb);
  for k = 0 to Numbering.num_paths nb - 1 do
    let path = Ppp_flow.Routine_ctx.cfg_path_of_dag_path ctx (Numbering.decode nb k) in
    Format.printf "  path %d = %a@." k (Ppp_profile.Path.pp view) path
  done;
  Format.printf "@.";

  (* Instrument with PP and with PPP; compare the placed actions. *)
  let show config =
    let inst = Instrument.instrument program ep config in
    let o =
      Interp.run
        ~config:
          { Interp.default_config with instrumentation = Some inst.Instrument.rt }
        program
    in
    Format.printf "--- %s: instrumentation cost %d cycles (%.1f%% overhead)@."
      config.Config.name o.Interp.instr_cost (100.0 *. Interp.overhead o);
    (* PPP may decide main is already covered well enough by the edge
       profile (low-coverage skip) and place nothing at all. *)
    match Hashtbl.find_opt (Option.get o.Interp.instr_state) "main" with
    | None ->
        Format.printf
          "    (main left uninstrumented: edge-profile coverage was enough)@."
    | Some table ->
        let plan = Hashtbl.find inst.Instrument.plans "main" in
        Instr_rt.Table.iter_nonzero table (fun k count ->
            match Instrument.decoded_path plan k with
            | Some path ->
                Format.printf "    count[%d] = %3d   %a@." k count
                  (Ppp_profile.Path.pp view) path
            | None ->
                Format.printf "    count[%d] = %3d   (cold region)@." k count)
  in
  Format.printf "=== 4. Instrument, run, decode ===@.";
  show Config.pp;
  show Config.ppp;
  Format.printf "@.=== 5. Ground truth for comparison ===@.";
  let actual = Option.get base.Interp.path_profile in
  Ppp_profile.Path_profile.iter
    (Ppp_profile.Path_profile.routine actual "main")
    (fun path n -> Format.printf "    %3d x %a@." n (Ppp_profile.Path.pp view) path)
