(* Remaining surfaces: Graphviz output, static frequency estimation, the
   cost model's invariants, builder misuse diagnostics, parser error
   locations, and generator determinism. *)

module Graph = Ppp_cfg.Graph
module Dot = Ppp_cfg.Dot
module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder
module Cfg_view = Ppp_ir.Cfg_view
module Static_est = Ppp_profile.Static_est
module Cost = Ppp_interp.Cost
module Instr_rt = Ppp_interp.Instr_rt

let check_bool = Alcotest.(check bool)

let test_dot_output () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  let s =
    Format.asprintf "%a"
      (fun ppf ->
        Dot.pp ~name:"t" ~node_label:(Printf.sprintf "n%d")
          ~edge_label:(Printf.sprintf "e%d") ppf)
      g
  in
  let has sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "digraph" true (has "digraph t");
  check_bool "edge" true (has "n0 -> n1");
  check_bool "label" true (has "\"e1\"")

let loop_routine () =
  let b = B.create ~name:"f" ~nparams:0 in
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 100) (fun () ->
      let c = B.bin_ b Ir.And (Ir.Reg i) (Ir.Imm 1) in
      B.if_ b c ~then_:(fun () -> ()) ~else_:(fun () -> ()));
  B.ret b None;
  B.finish b

let test_static_est_heuristics () =
  (* Inside the loop, predicted frequencies are ~10x the entry's; the
     two branch sides split evenly. *)
  let r = loop_routine () in
  let view = Cfg_view.of_routine r in
  let est = Static_est.edge_freqs view in
  let g = Cfg_view.graph view in
  (* Find the branch block: out-degree 2 and not the loop header. *)
  let loops = Ppp_cfg.Loop.compute g ~root:0 in
  let header = (List.hd (Ppp_cfg.Loop.loops loops)).Ppp_cfg.Loop.header in
  Graph.iter_nodes g (fun v ->
      if v <> header && Graph.out_degree g v = 2 then begin
        match Graph.out_edges g v with
        | [ a; b ] ->
            Alcotest.(check (float 1e-6)) "50/50 split" est.(a) est.(b);
            check_bool "hotter than entry" true (est.(a) > 1.0)
        | _ -> ()
      end)

let test_static_est_no_profile_needed () =
  (* Static estimation works on never-executed code, by construction. *)
  let r = loop_routine () in
  let est = Static_est.edge_freqs (Cfg_view.of_routine r) in
  check_bool "all finite and nonnegative" true
    (Array.for_all (fun f -> Float.is_finite f && f >= 0.0) est)

let test_cost_invariants () =
  (* The relative-cost facts the paper relies on. *)
  let arr = Instr_rt.Array_table 16 in
  let hash = Instr_rt.Hash_table in
  let c t a = Cost.action ~table:t a in
  check_bool "hash = 5x array (Section 3.2)" true
    (c hash Instr_rt.Count_r = 5 * c arr Instr_rt.Count_r);
  check_bool "check costs extra" true
    (c arr Instr_rt.Count_checked > c arr Instr_rt.Count_r);
  check_bool "combined const count is cheapest" true
    (c arr (Instr_rt.Count_const 0) < c arr Instr_rt.Count_r);
  check_bool "register ops are cheap" true
    (c arr (Instr_rt.Set_r 0) <= 1 && c arr (Instr_rt.Add_r 1) <= 1);
  check_bool "calls cost more than moves" true
    (Cost.instr (Ir.Call (None, "f", [])) + Cost.call_overhead
    > Cost.instr (Ir.Mov (0, Ir.Imm 0)))

let test_builder_misuse () =
  (* Emission after a terminator raises with a helpful message. *)
  let b = B.create ~name:"f" ~nparams:0 in
  B.ret b None;
  (match B.out b (Ir.Imm 1) with
  | exception Invalid_argument msg ->
      check_bool "mentions the routine" true
        (String.length msg > 0
        &&
        let has sub =
          let n = String.length sub and m = String.length msg in
          let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
          go 0
        in
        has "f")
  | () -> Alcotest.fail "expected Invalid_argument");
  (* Out-of-range parameter access. *)
  let b2 = B.create ~name:"g" ~nparams:1 in
  match B.param b2 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_parse_error_line_numbers () =
  let src = "routine main(0) regs 1 {\nentry:\n  r0 = 1\n  r0 = @\n  ret\n}" in
  match Ppp_ir.Parse.program_of_string src with
  | exception Ppp_ir.Parse.Error e ->
      Alcotest.(check int) "points at line 4" 4 e.Ppp_ir.Parse.line;
      check_bool "rendered message carries the line"
        true
        (let msg = Ppp_ir.Parse.located_message e in
         let sub = "line 4" in
         let n = String.length sub and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
         go 0)
  | _ -> Alcotest.fail "expected a parse error"

let test_gen_deterministic () =
  let a = Ppp_workloads.Gen.program ~seed:7 in
  let b = Ppp_workloads.Gen.program ~seed:7 in
  let c = Ppp_workloads.Gen.program ~seed:8 in
  check_bool "same seed, same program" true (a = b);
  check_bool "different seed, different program" true (a <> c)

let test_graph_copy_independent () =
  let g = Graph.create () in
  Graph.add_nodes g 2;
  ignore (Graph.add_edge g 0 1);
  let g2 = Graph.copy g in
  ignore (Graph.add_edge g 1 0);
  Alcotest.(check int) "copy unchanged" 1 (Graph.num_edges g2);
  Alcotest.(check int) "original grew" 2 (Graph.num_edges g)

let test_metric_names () =
  Alcotest.(check string) "unit" "unit-flow"
    (Ppp_profile.Metric.name Ppp_profile.Metric.Unit_flow);
  Alcotest.(check string) "branch" "branch-flow"
    (Ppp_profile.Metric.name Ppp_profile.Metric.Branch_flow);
  Alcotest.(check int) "branch flow formula" 42
    (Ppp_profile.Metric.flow Ppp_profile.Metric.Branch_flow ~freq:14 ~branches:3)

let suite =
  [
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "static estimation heuristics" `Quick test_static_est_heuristics;
    Alcotest.test_case "static estimation cold code" `Quick test_static_est_no_profile_needed;
    Alcotest.test_case "cost invariants" `Quick test_cost_invariants;
    Alcotest.test_case "builder misuse" `Quick test_builder_misuse;
    Alcotest.test_case "parse error lines" `Quick test_parse_error_line_numbers;
    Alcotest.test_case "generator determinism" `Quick test_gen_deterministic;
    Alcotest.test_case "graph copy" `Quick test_graph_copy_independent;
    Alcotest.test_case "metric basics" `Quick test_metric_names;
  ]
