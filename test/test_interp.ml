module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder
module Interp = Ppp_interp.Interp
module Instr_rt = Ppp_interp.Instr_rt
module Path_profile = Ppp_profile.Path_profile
module Edge_profile = Ppp_profile.Edge_profile

let run_src src = Interp.run (Ppp_ir.Parse.program_of_string src)

let test_arith () =
  let o =
    run_src
      {|routine main(0) regs 4 {
entry:
  r0 = 7
  r1 = r0 * 3
  r2 = r1 % 4
  r3 = r1 / 4
  out r1
  out r2
  out r3
  r1 = 0 - 9
  r2 = r1 >> 1
  out r2
  r2 = r1 & 6
  out r2
  ret
}|}
  in
  Alcotest.(check (list int)) "arith" [ 21; 1; 5; -5; 6 ] o.Interp.output

let test_comparisons () =
  let o =
    run_src
      {|routine main(0) regs 2 {
entry:
  r0 = 3 < 4
  out r0
  r0 = 4 <= 3
  out r0
  r0 = 5 == 5
  out r0
  r0 = 5 != 5
  out r0
  ret
}|}
  in
  Alcotest.(check (list int)) "cmp" [ 1; 0; 1; 0 ] o.Interp.output

let test_calls_and_arrays () =
  let o =
    run_src
      {|array a 8
routine main(0) regs 3 {
entry:
  a[0] = 5
  r0 = a[0]
  r1 = call twice(r0)
  out r1
  ret r1
}
routine twice(1) regs 2 {
entry:
  r1 = r0 * 2
  ret r1
}|}
  in
  Alcotest.(check (list int)) "call result" [ 10 ] o.Interp.output;
  Alcotest.(check (option int)) "return" (Some 10) o.Interp.return_value

let test_division_by_zero () =
  Alcotest.check_raises "div by zero" (Interp.Runtime_error "division by zero")
    (fun () ->
      ignore (run_src "routine main(0) regs 2 { entry: r0 = 0 \n r1 = 4 / r0 \n ret }"))

let test_bounds () =
  match
    run_src "array a 4\nroutine main(0) regs 1 { entry: r0 = a[9] \n ret }"
  with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected bounds error"

let test_fuel () =
  let p =
    Ppp_ir.Parse.program_of_string
      {|routine main(0) regs 2 {
entry:
  r0 = 0
  jump head
head:
  r1 = r0 < 1000000
  br r1, body, done
body:
  r0 = r0 + 1
  jump head
done:
  ret
}|}
  in
  let o = Interp.run ~config:{ Interp.default_config with fuel = 1000 } p in
  (match o.Interp.termination with
  | Interp.Out_of_fuel { stack_depth } ->
      Alcotest.(check int) "main was still live" 1 stack_depth
  | Interp.Finished -> Alcotest.fail "expected fuel exhaustion");
  (* The partial run still reports everything it collected. *)
  Alcotest.(check bool) "no return value" true (o.Interp.return_value = None);
  Alcotest.(check bool) "partial work is visible" true (o.Interp.dyn_instrs > 0);
  Alcotest.(check bool)
    "partial edge profile survives" true
    (o.Interp.edge_profile <> None)

(* Path semantics (Section 3.1): a 3-iteration counted loop produces one
   entry path, iteration paths, and one exit path. *)
let loop_program iters =
  let b = B.create ~name:"main" ~nparams:0 in
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm iters) (fun () -> B.out b (Ir.Reg i));
  B.ret b None;
  B.program ~main:"main" [ B.finish b ]

let test_path_counts () =
  let o = Interp.run (loop_program 3) in
  (* Paths: entry->head->body (ends at back edge), 2 x head->body->back,
     1 x head->exit. Total 4 path executions... the first path is
     entry..body..back. Iterations 2 and 3 start at the header. *)
  Alcotest.(check int) "dyn paths" 4 o.Interp.dyn_paths;
  let pp = Option.get o.Interp.path_profile in
  let t = Path_profile.routine pp "main" in
  Alcotest.(check int) "distinct" 3 (Path_profile.num_distinct t)

let test_call_defers_path () =
  (* A call inside a block must not split the caller's path. *)
  let o =
    run_src
      {|routine main(0) regs 2 {
entry:
  r0 = call f()
  r1 = call f()
  out r0
  ret
}
routine f(0) regs 1 { entry: ret r0 }|}
  in
  Alcotest.(check int) "three paths: two callees + one caller" 3 o.Interp.dyn_paths

let test_edge_profile_collected () =
  let o = Interp.run (loop_program 5) in
  let ep = Option.get o.Interp.edge_profile in
  let total = Edge_profile.total (Edge_profile.routine ep "main") in
  Alcotest.(check bool) "edges counted" true (total > 0);
  Alcotest.(check int) "one invocation" 1
    (Edge_profile.entry_count ep (loop_program 5) "main")

let test_instrumentation_actions_cost () =
  (* Attach a Set_r and a Count_const to the return edge by hand and check
     cost accounting and table contents. *)
  let p = Ppp_ir.Parse.program_of_string "routine main(0) regs 1 { entry: ret }" in
  let view = Ppp_ir.Cfg_view.of_routine (Ir.routine p "main") in
  let ret_edge = Ppp_ir.Cfg_view.return_edge view 0 in
  let edge_actions = Array.make 1 [] in
  edge_actions.(ret_edge) <- [ Instr_rt.Set_r 0; Instr_rt.Count_r ];
  let rt = Instr_rt.no_instrumentation () in
  Hashtbl.replace rt "main"
    { Instr_rt.edge_actions; table = Instr_rt.Array_table 1; num_paths = 1 };
  let o =
    Interp.run ~config:{ Interp.default_config with instrumentation = Some rt } p
  in
  Alcotest.(check bool) "instr cost > 0" true (o.Interp.instr_cost > 0);
  let st = Option.get o.Interp.instr_state in
  let table = Hashtbl.find st "main" in
  Alcotest.(check int) "count[0] = 1" 1 (Instr_rt.Table.get table 0)

let test_hash_table () =
  let t = Instr_rt.Table.create Instr_rt.Hash_table in
  Instr_rt.Table.bump t 12345;
  Instr_rt.Table.bump t 12345;
  Instr_rt.Table.bump t 99;
  Alcotest.(check int) "hash get" 2 (Instr_rt.Table.get t 12345);
  Alcotest.(check int) "hash get 2" 1 (Instr_rt.Table.get t 99);
  Alcotest.(check int) "miss" 0 (Instr_rt.Table.get t 7);
  (* Negative keys go to the cold counter. *)
  Instr_rt.Table.bump t (-5);
  Alcotest.(check int) "cold" 1 (Instr_rt.Table.cold t)

let test_hash_collisions_lost () =
  let t = Instr_rt.Table.create Instr_rt.Hash_table in
  (* Insert many distinct keys; with 701 slots and 3 tries some must be
     lost, and none may be silently miscounted. *)
  for k = 0 to 4999 do
    Instr_rt.Table.bump t k
  done;
  let recorded = ref 0 in
  Instr_rt.Table.iter_nonzero t (fun _ c -> recorded := !recorded + c);
  Alcotest.(check int) "recorded + lost = total" 5000
    (!recorded + Instr_rt.Table.lost t);
  Alcotest.(check bool) "some lost" true (Instr_rt.Table.lost t > 0)

let engines = [ ("vm", Interp.Vm); ("reference", Interp.Reference) ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Pin the documented shift saturation semantics — counts are masked to
   [0, 63] and clamped at 62, so a shift never wraps into undefined
   territory — in both engines. *)
let test_shift_edge_cases () =
  let src =
    {|routine main(0) regs 3 {
entry:
  r0 = 1
  r1 = r0 << 62
  out r1
  r1 = r0 << 63
  out r1
  r1 = r0 << 64
  out r1
  r2 = 3
  r1 = r2 << 100
  out r1
  r2 = 0 - 1
  r1 = 5 << r2
  out r1
  r2 = 0 - 7
  r1 = r2 << 2
  out r1
  r2 = 0 - 1
  r1 = r2 >> 63
  out r1
  r1 = r0 >> 63
  out r1
  r2 = 0 - 9
  r1 = r2 >> 64
  out r1
  r1 = 12345 >> 70
  out r1
  r2 = r0 << 62
  r1 = r2 >> 62
  out r1
  ret
}|}
  in
  let p = Ppp_ir.Parse.program_of_string src in
  let expected =
    [ -4611686018427387904; 0; 1; 206158430208; 0; -28; -1; 0; -9; 192; -1 ]
  in
  List.iter
    (fun (name, engine) ->
      let o = Interp.run ~engine p in
      Alcotest.(check (list int)) ("shifts/" ^ name) expected o.Interp.output)
    engines;
  (* The same table, via the shared primitive both engines dispatch to. *)
  Alcotest.(check int) "exec_binop shl 63" 0 (Interp.exec_binop Ir.Shl 1 63);
  Alcotest.(check int) "exec_binop shl -1" 0 (Interp.exec_binop Ir.Shl 5 (-1));
  Alcotest.(check int) "exec_binop shr -1" (-1) (Interp.exec_binop Ir.Shr (-9) (-1));
  Alcotest.(check int) "exec_binop shr 64" (-9) (Interp.exec_binop Ir.Shr (-9) 64)

(* A call passing more arguments than the callee has registers used to
   escape as a raw Invalid_argument from the frame copy; both engines now
   reject it up front with a located Runtime_error — even when the bad
   call sits on an unexecuted branch arm. *)
let test_call_arity () =
  let open Ir in
  let callee =
    {
      name = "f";
      nparams = 1;
      nregs = 1;
      blocks = [| { label = "entry"; instrs = [||]; term = Return (Some (Reg 0)) } |];
    }
  in
  let main_blocks executed =
    let call = { label = "call"; instrs = [| Call (Some 0, "f", [ Imm 1; Imm 2 ]) |]; term = Return (Some (Reg 0)) } in
    let skip = { label = "skip"; instrs = [||]; term = Return None } in
    if executed then
      [| { label = "entry"; instrs = [| Mov (0, Imm 1) |]; term = Branch (Reg 0, 1, 2) }; call; skip |]
    else
      [| { label = "entry"; instrs = [| Mov (0, Imm 0) |]; term = Branch (Reg 0, 1, 2) }; call; skip |]
  in
  let program executed =
    {
      arrays = [];
      routines = [ callee; { name = "main"; nparams = 0; nregs = 1; blocks = main_blocks executed } ];
      main = "main";
    }
  in
  List.iter
    (fun (ename, engine) ->
      List.iter
        (fun executed ->
          let label = Printf.sprintf "arity/%s/executed=%b" ename executed in
          match Interp.run ~engine (program executed) with
          | exception Interp.Runtime_error msg ->
              (* The message names the caller, the callee and the sizes. *)
              let located = contains ~sub:"only 1 registers" msg in
              Alcotest.(check bool) (label ^ " located message") true located
          | _ -> Alcotest.fail (label ^ ": expected Runtime_error"))
        [ true; false ])
    engines;
  (* The static checker flags it too. *)
  match Ppp_ir.Check.program (program true) with
  | Ok () -> Alcotest.fail "Check accepted args > nregs"
  | Error msgs ->
      Alcotest.(check bool) "Check reports the register deficit" true
        (List.exists (contains ~sub:"only 1 registers") msgs)

let prop_deterministic =
  QCheck.Test.make ~name:"interpreter is deterministic" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o1 = Interp.run p and o2 = Interp.run p in
      o1.Interp.output = o2.Interp.output
      && o1.Interp.base_cost = o2.Interp.base_cost
      && o1.Interp.dyn_paths = o2.Interp.dyn_paths)

let prop_flow_conservation =
  QCheck.Test.make
    ~name:"edge profile conserves flow at every block (in = out)" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o = Interp.run p in
      let ep = Option.get o.Interp.edge_profile in
      List.for_all
        (fun (r : Ir.routine) ->
          let view = Ppp_ir.Cfg_view.of_routine r in
          let g = Ppp_ir.Cfg_view.graph view in
          let prof = Edge_profile.routine ep r.Ir.name in
          let sum es = List.fold_left (fun a e -> a + Edge_profile.freq prof e) 0 es in
          let ok = ref true in
          for v = 0 to Array.length r.Ir.blocks - 1 do
            let inflow =
              sum (Ppp_cfg.Graph.in_edges g v)
              + if v = 0 then Edge_profile.entry_count ep p r.Ir.name else 0
            in
            let outflow = sum (Ppp_cfg.Graph.out_edges g v) in
            if inflow <> outflow then ok := false
          done;
          !ok)
        p.Ir.routines)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "calls and arrays" `Quick test_calls_and_arrays;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "path counts" `Quick test_path_counts;
    Alcotest.test_case "calls defer paths" `Quick test_call_defers_path;
    Alcotest.test_case "edge profile" `Quick test_edge_profile_collected;
    Alcotest.test_case "instrumentation runtime" `Quick test_instrumentation_actions_cost;
    Alcotest.test_case "hash table" `Quick test_hash_table;
    Alcotest.test_case "hash collisions" `Quick test_hash_collisions_lost;
    Alcotest.test_case "shift edge cases" `Quick test_shift_edge_cases;
    Alcotest.test_case "call arity" `Quick test_call_arity;
    QCheck_alcotest.to_alcotest prop_deterministic;
    QCheck_alcotest.to_alcotest prop_flow_conservation;
  ]
