(* The parallel ≡ sequential contract: sharded collection produces the
   same bytes, counts, hot-path sets and merged metrics at every -j,
   crashes degrade to located diagnostics, and the perf gate tells a
   changed benchmark document from an unchanged one. *)

module Shard = Ppp_harness.Shard
module Gate = Ppp_harness.Gate
module R = Ppp_harness.Report
module Interp = Ppp_interp.Interp
module Profile_io = Ppp_profile.Profile_io
module Raw = Ppp_profile.Profile_io.Raw
module Metrics = Ppp_obs.Metrics
module Diagnostic = Ppp_resilience.Diagnostic
module Spec = Ppp_workloads.Spec
module J = Ppp_obs.Jsonx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* {2 Differential collection: -j 1 ≡ -j 2 ≡ -j 8 ≡ fork-free} *)

(* What collect_workloads does, without any forking: the trusted
   reference the pool is measured against. *)
let sequential_reference () =
  Raw.merge
    (List.map
       (fun (b : Spec.bench) ->
         let p = b.Spec.build ~scale:1 in
         let o = Interp.run p in
         Raw.rename
           (fun r -> b.Spec.bench_name ^ "/" ^ r)
           (Raw.of_program ?edges:o.Interp.edge_profile
              ?paths:o.Interp.path_profile p))
       Spec.all)

(* The per-routine set of hot path lines (count >= threshold) extracted
   from a canonical dump's paths section. *)
let hot_path_set ~threshold dump =
  let hot = ref [] in
  let routine = ref "" in
  let in_paths = ref false in
  String.split_on_char '\n' dump
  |> List.iter (fun line ->
         if String.length line >= 13 && String.sub line 0 13 = "section paths"
         then in_paths := true
         else if String.length line >= 8 && String.sub line 0 8 = "section " then
           in_paths := false
         else if !in_paths then
           if String.length line >= 8 && String.sub line 0 8 = "routine " then
             routine := String.sub line 8 (String.length line - 8)
           else
             match String.index_opt line ':' with
             | Some _ -> (
                 match int_of_string_opt (List.hd (String.split_on_char ' ' line)) with
                 | Some count when count >= threshold ->
                     hot := (!routine, line) :: !hot
                 | _ -> ())
             | None -> ());
  List.sort_uniq compare !hot

let test_collect_differential () =
  let collect jobs = Shard.collect_workloads ~jobs ~metrics:true Spec.all in
  let c1 = collect 1 and c2 = collect 2 and c8 = collect 8 in
  List.iter
    (fun (j, c) ->
      check_int (Printf.sprintf "-j %d loses no shard" j) 0
        (List.length c.Shard.lost))
    [ (1, c1); (2, c2); (8, c8) ];
  let d1 = Raw.to_string c1.Shard.raw in
  let d2 = Raw.to_string c2.Shard.raw in
  let d8 = Raw.to_string c8.Shard.raw in
  check_string "-j 1 and -j 2 merged dumps are byte-identical" d1 d2;
  check_string "-j 1 and -j 8 merged dumps are byte-identical" d1 d8;
  check_string "fork-free reference matches the pool" d1
    (Raw.to_string (sequential_reference ()));
  (* Per-shard dumps, in workload order, are identical too. *)
  check_bool "per-shard dumps identical across -j" true
    (c1.Shard.shards = c2.Shard.shards && c1.Shard.shards = c8.Shard.shards);
  check_int "one shard per workload" (List.length Spec.all)
    (List.length c1.Shard.shards);
  (* Merged rt.* / interp.* metrics aggregate to the same snapshot. *)
  check_bool "merged metrics identical across -j" true
    (c1.Shard.metrics = c2.Shard.metrics && c1.Shard.metrics = c8.Shard.metrics);
  check_bool "merged metrics are non-trivial" true
    (match Metrics.counter_value c1.Shard.metrics "interp.dyn_instrs" with
    | Some n -> n > 0
    | None -> false);
  (* Hot-path sets (paths with count >= 50) agree across -j levels. *)
  let h1 = hot_path_set ~threshold:50 d1 in
  check_bool "hot-path sets identical across -j" true
    (h1 = hot_path_set ~threshold:50 d2 && h1 = hot_path_set ~threshold:50 d8);
  check_bool "hot-path set is non-empty" true (h1 <> []);
  (* No salvage happened: every shard agreed on its (prefixed) CFGs. *)
  check_int "no merge diagnostics" 0
    (List.length (Raw.diagnostics c1.Shard.raw))

(* {2 The pool itself} *)

let test_map_order_and_results () =
  let items = [ 10; 20; 30; 40; 50; 60; 70 ] in
  let results = Shard.map ~jobs:3 ~f:(fun ~seed:_ x -> x + 1) items in
  check_bool "results in item order" true
    (results = List.map (fun x -> Ok (x + 1)) items)

let test_seed_derivation_j_invariant () =
  let items = [ 0; 1; 2; 3; 4; 5 ] in
  let seeds jobs =
    Shard.map ~jobs ~seed:99 ~f:(fun ~seed _ -> seed) items
    |> List.map (function Ok s -> s | Error _ -> -1)
  in
  let s1 = seeds 1 in
  check_bool "per-item seeds identical at -j 1 / -j 3 / -j 6" true
    (s1 = seeds 3 && s1 = seeds 6);
  check_bool "seeds match derive_seed directly" true
    (s1 = List.map (Shard.derive_seed 99) items);
  check_bool "seeds are distinct per item" true
    (List.length (List.sort_uniq compare s1) = List.length items)

let test_worker_crash () =
  (* Worker 1 (of 2) owns items 1, 3, 5; it delivers 1, then dies hard
     on 3 — so 3 and 5 must come back as located Shard_lost
     diagnostics, and every other item must survive. *)
  let results =
    Shard.map ~jobs:2
      ~f:(fun ~seed:_ i -> if i = 3 then Unix._exit 7 else i * 2)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
          check_bool (Printf.sprintf "item %d survives" i) true
            (i <> 3 && i <> 5);
          check_int (Printf.sprintf "item %d value" i) (i * 2) v
      | Error d ->
          check_bool (Printf.sprintf "item %d is a loss" i) true
            (i = 3 || i = 5);
          check_bool "kind is shard-lost" true
            (d.Diagnostic.kind = Diagnostic.Shard_lost);
          check_bool "diagnostic locates the item" true
            (d.Diagnostic.line = Some i);
          check_bool "diagnostic names the exit code" true
            (let msg = d.Diagnostic.message in
             let needle = "exited with code 7" in
             let n = String.length needle in
             let rec find j =
               j + n <= String.length msg
               && (String.sub msg j n = needle || find (j + 1))
             in
             find 0))
    results

let test_worker_exception () =
  (* An exception in [f] costs only that item; the worker keeps going. *)
  let results =
    Shard.map ~jobs:2
      ~f:(fun ~seed:_ i -> if i = 1 then failwith "boom" else i)
      [ 0; 1; 2; 3 ]
  in
  match results with
  | [ Ok 0; Error d; Ok 2; Ok 3 ] ->
      check_bool "kind is shard-lost" true
        (d.Diagnostic.kind = Diagnostic.Shard_lost)
  | _ -> Alcotest.fail "expected exactly item 1 to fail"

(* {2 The perf gate} *)

let doc ?(schema = "ppp-bench/1") ?timing ~name ~ppp_overhead () =
  let timing_fields =
    match timing with
    | None -> []
    | Some (base_ns, ppp_ns) ->
        [
          ( "timing",
            J.Obj [ ("base_ns", J.Float base_ns); ("ppp_ns", J.Float ppp_ns) ]
          );
        ]
  in
  J.Obj
    [
      ("schema", J.Str schema);
      ("scale", J.Int 1);
      ( "benchmarks",
        J.Arr
          [
            J.Obj
              ([
                 ("name", J.Str name);
                 ( "methods",
                   J.Obj [ ("ppp", J.Obj [ ("overhead", J.Float ppp_overhead) ]) ]
                 );
               ]
              @ timing_fields);
          ] );
    ]

let test_gate_semantics () =
  let base = doc ~name:"vpr" ~ppp_overhead:0.10 () in
  check_int "identical docs pass" 0
    (List.length (Gate.check ~baseline:base ~current:base ~pct:1.0));
  check_int "improvement passes" 0
    (List.length
       (Gate.check ~baseline:base
          ~current:(doc ~name:"vpr" ~ppp_overhead:0.05 ())
          ~pct:1.0));
  (match
     Gate.check ~baseline:base
       ~current:(doc ~name:"vpr" ~ppp_overhead:0.2 ())
       ~pct:25.0
   with
  | [ f ] ->
      check_string "regression metric" "ppp.overhead" f.Gate.metric;
      check_string "regression bench" "vpr" f.Gate.bench
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 failure, got %d" (List.length fs)));
  check_bool "within tolerance passes" true
    (Gate.check ~baseline:base
       ~current:(doc ~name:"vpr" ~ppp_overhead:0.11 ())
       ~pct:25.0
    = []);
  (match
     Gate.check ~baseline:base
       ~current:(doc ~name:"mcf" ~ppp_overhead:0.10 ())
       ~pct:1.0
   with
  | [ f ] -> check_string "missing bench is a failure" "missing" f.Gate.metric
  | _ -> Alcotest.fail "expected a missing-bench failure");
  (match
     Gate.check ~baseline:base
       ~current:(doc ~schema:"ppp-bench/2" ~name:"vpr" ~ppp_overhead:0.10 ())
       ~pct:1.0
   with
  | [ f ] -> check_string "schema mismatch is a failure" "schema" f.Gate.metric
  | _ -> Alcotest.fail "expected a schema failure");
  (* Wall-clock ratios gate only when both sides carry timing. *)
  let base_t = doc ~name:"vpr" ~ppp_overhead:0.10 ~timing:(100., 110.) () in
  check_int "timing ratio within tolerance passes" 0
    (List.length
       (Gate.check ~baseline:base_t
          ~current:(doc ~name:"vpr" ~ppp_overhead:0.10 ~timing:(200., 222.) ())
          ~pct:5.0));
  (match
     Gate.check ~baseline:base_t
       ~current:(doc ~name:"vpr" ~ppp_overhead:0.10 ~timing:(100., 160.) ())
       ~pct:20.0
   with
  | [ f ] -> check_string "timing regression caught" "timing.ppp_ns" f.Gate.metric
  | _ -> Alcotest.fail "expected a timing failure");
  check_int "timing ignored when current has none" 0
    (List.length
       (Gate.check ~baseline:base_t
          ~current:(doc ~name:"vpr" ~ppp_overhead:0.10 ())
          ~pct:1.0))

(* The gate smoke path end-to-end on a cheap subset: two independently
   computed documents of the same tree gate cleanly at a tight
   tolerance, and the document round-trips through its own text. *)
let test_gate_smoke_subset () =
  let rows () =
    List.map R.bench_json_one (R.prepare_all ~names:[ "vpr"; "mcf" ] ())
  in
  let doc_a = J.canonical (R.bench_json_wrap ~scale:1 ~seed:0 (rows ())) in
  let doc_b = J.canonical (R.bench_json_wrap ~scale:1 ~seed:0 (rows ())) in
  check_int "unchanged tree gates cleanly" 0
    (List.length (Gate.check ~baseline:doc_a ~current:doc_b ~pct:0.01));
  (* Schema round-trip: parsing the canonical text and re-rendering it
     is byte-stable (floats may lose bits of precision on the first
     print, but the printed form is a fixed point). *)
  let text = J.to_string doc_a in
  let reparsed = J.canonical (J.of_string text) in
  check_string "JSON round-trips byte-identically" text (J.to_string reparsed);
  check_bool "round-trip preserves structure" true
    (J.member reparsed "schema" = J.member doc_a "schema"
    && List.length (J.to_list (Option.get (J.member reparsed "benchmarks"))) = 2)

(* The committed baseline: well-formed, canonical, covers every
   workload, and gates cleanly against itself. The full
   current-tree-vs-baseline gate runs in CI's shard job (it needs the
   whole evaluation pass). *)
let test_committed_baseline () =
  let path = "../BENCH_baseline.json" in
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc = J.of_string text in
  check_bool "schema" true (J.member doc "schema" = Some (J.Str "ppp-bench/1"));
  check_int "all workloads present" (List.length Spec.all)
    (List.length (J.to_list (Option.get (J.member doc "benchmarks"))));
  check_bool "baseline text is canonical" true
    (String.trim text = J.to_string (J.canonical doc));
  check_int "baseline gates cleanly against itself" 0
    (List.length (Gate.check ~baseline:doc ~current:doc ~pct:0.01))

let suite =
  [
    Alcotest.test_case "collect differential -j1/-j2/-j8" `Slow
      test_collect_differential;
    Alcotest.test_case "map keeps item order" `Quick test_map_order_and_results;
    Alcotest.test_case "seed derivation is -j invariant" `Quick
      test_seed_derivation_j_invariant;
    Alcotest.test_case "worker crash degrades to diagnostics" `Quick
      test_worker_crash;
    Alcotest.test_case "worker exception costs one item" `Quick
      test_worker_exception;
    Alcotest.test_case "gate semantics" `Quick test_gate_semantics;
    Alcotest.test_case "gate smoke on a subset + JSON round-trip" `Slow
      test_gate_smoke_subset;
    Alcotest.test_case "committed baseline is sound" `Quick
      test_committed_baseline;
  ]
