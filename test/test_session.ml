(* The session layer: warm/cold differentials (results must be
   byte-identical, only the work differs), the incremental
   re-optimization loop, lowering-duplication regression, retention
   across generations, and composition with sharded collection. *)

module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Config = Ppp_core.Config
module H = Ppp_harness.Pipeline
module Shard = Ppp_harness.Shard
module Session = Ppp_session.Session
module Metrics = Ppp_obs.Metrics
module Profile_io = Ppp_profile.Profile_io
module Spec = Ppp_workloads.Spec

let bench name =
  match Spec.find_opt name with
  | Some b -> b
  | None -> Alcotest.failf "unknown workload %s" name

let all_methods = [ Config.pp; Config.tpp; Config.ppp ]

let save_profile (prep : H.prepared) =
  Format.asprintf "%t" (fun ppf ->
      Profile_io.save
        ?edges:prep.H.base_outcome.Interp.edge_profile
        ?paths:prep.H.base_outcome.Interp.path_profile ppf prep.H.optimized)

(* {2 Warm vs cold differential} *)

let strip_session snap =
  List.filter
    (fun (name, _) ->
      not (String.length name >= 8 && String.sub name 0 8 = "session."))
    snap

(* Prepare and evaluate every method against one session; return
   everything observable — evaluations, the profile dump, and the full
   metrics snapshot minus the session's own counters. *)
let eval_all ~cache ~name p =
  Metrics.set_enabled true;
  Metrics.reset ();
  let session = Session.create ~enabled:cache ~name () in
  let prep = H.prepare ~session ~name p in
  let evs =
    H.evaluate_edge_profile prep :: List.map (H.evaluate prep) all_methods
  in
  let dump = save_profile prep in
  let snap = strip_session (Metrics.snapshot ()) in
  Metrics.set_enabled false;
  (evs, dump, snap)

let prop_warm_cold_identical =
  QCheck.Test.make ~count:15
    ~name:"warm and cold sessions: byte-identical reports, profiles, metrics"
    QCheck.small_int
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let w_evs, w_dump, w_snap = eval_all ~cache:true ~name:"qc" p in
      let c_evs, c_dump, c_snap = eval_all ~cache:false ~name:"qc" p in
      w_evs = c_evs && String.equal w_dump c_dump && w_snap = c_snap)

let test_warm_cold_workloads () =
  List.iter
    (fun (b : Spec.bench) ->
      let name = b.Spec.bench_name in
      let p = b.Spec.build ~scale:1 in
      let w_evs, w_dump, w_snap = eval_all ~cache:true ~name p in
      let c_evs, c_dump, c_snap = eval_all ~cache:false ~name p in
      Alcotest.(check bool) (name ^ ": evaluations identical") true (w_evs = c_evs);
      Alcotest.(check string) (name ^ ": profile dump identical") c_dump w_dump;
      Alcotest.(check bool)
        (name ^ ": metrics identical modulo session.*")
        true (w_snap = c_snap))
    [ bench "vpr"; bench "mcf"; bench "bzip2"; bench "equake" ]

(* {2 The work saving (acceptance: >= 2x)} *)

(* A disabled session counts every lookup as a miss, so misses are the
   per-artifact work actually performed; the ratio of cold misses over
   warm misses is the saving of sharing one session across the whole
   4-method evaluation. *)
let test_work_ratio () =
  let work ~cache =
    List.fold_left
      (fun acc (b : Spec.bench) ->
        let name = b.Spec.bench_name in
        let s = Session.create ~enabled:cache ~name () in
        let prep = H.prepare ~session:s ~name (b.Spec.build ~scale:1) in
        ignore (H.evaluate_edge_profile prep);
        List.iter (fun c -> ignore (H.evaluate prep c)) all_methods;
        acc + (Session.stats s).Session.misses)
      0
      [ bench "gap"; bench "bzip2"; bench "crafty" ]
  in
  let warm = work ~cache:true and cold = work ~cache:false in
  Alcotest.(check bool)
    (Printf.sprintf
       "warm 4-method evaluation does >= 2x less analysis work (cold %d vs \
        warm %d misses)"
       cold warm)
    true
    (cold >= 2 * warm)

(* {2 Lowering duplication regression} *)

(* Each routine must lower at most once per program generation: the
   preparation's three generations (original, inlined, optimized) may
   each lower a routine once, and the evaluation runs — four methods,
   each re-running the optimized program — must add no structural
   lowerings at all. Before the session refactor every run re-lowered
   the whole program. *)
let test_lower_once_per_generation () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let b = bench "gap" in
  let p = b.Spec.build ~scale:1 in
  let s = Session.create ~name:"gap" () in
  let prep = H.prepare ~session:s ~name:"gap" p in
  let misses () =
    Option.value ~default:0
      (Metrics.counter_value (Metrics.snapshot ()) "session.lower.miss")
  in
  let after_prepare = misses () in
  let bound =
    List.length p.Ir.routines
    + List.length prep.H.inline_stats.Ppp_opt.Inline.touched
    + List.length prep.H.unroll_stats.Ppp_opt.Unroll.touched
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "preparation lowers each routine at most once per generation (%d \
        lowerings, bound %d)"
       after_prepare bound)
    true
    (after_prepare <= bound);
  ignore (H.evaluate_edge_profile prep);
  List.iter (fun c -> ignore (H.evaluate prep c)) all_methods;
  let after_evals = misses () in
  Metrics.set_enabled false;
  Alcotest.(check int) "evaluation adds no structural lowerings" after_prepare
    after_evals

(* {2 Incremental re-optimization} *)

(* The manual equivalent of one reoptimize generation: save the previous
   generation's profile through the wire format, reload it against the
   previous optimized program, and prepare from it — each round with a
   fresh default session, as N separate `pppc opt` invocations would. *)
let manual_roundtrips ~iterations ~name p0 =
  let cur = ref p0 and prev = ref None in
  for _ = 1 to iterations do
    let prep =
      match !prev with
      | None -> H.prepare ~name !cur
      | Some (p : H.prepared) -> (
          match Profile_io.load !cur (save_profile p) with
          | Ok loaded -> H.prepare_with_profile ~name ~loaded !cur
          | Error _ -> Alcotest.failf "%s: manual profile reload failed" name)
    in
    prev := Some prep;
    cur := prep.H.optimized
  done;
  !cur

let test_iterate_equals_manual () =
  List.iter
    (fun (b : Spec.bench) ->
      let name = b.Spec.bench_name in
      let p = b.Spec.build ~scale:1 in
      let gens = H.reoptimize ~iterations:3 ~name p in
      let final = (List.nth gens 2).H.prep.H.optimized in
      let manual = manual_roundtrips ~iterations:3 ~name p in
      Alcotest.(check string)
        (name ^ ": iterate 3 equals 3 manual round-trips")
        (Ppp_ir.Pp_ir.to_string manual)
        (Ppp_ir.Pp_ir.to_string final))
    [ bench "vpr"; bench "bzip2"; bench "twolf" ]

let prop_iterate_equals_manual =
  QCheck.Test.make ~count:10
    ~name:"iterate N equals N manual round-trips (random programs)"
    QCheck.small_int
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let gens = H.reoptimize ~iterations:2 ~name:"qc" p in
      let final = (List.nth gens 1).H.prep.H.optimized in
      let manual = manual_roundtrips ~iterations:2 ~name:"qc" p in
      String.equal
        (Ppp_ir.Pp_ir.to_string manual)
        (Ppp_ir.Pp_ir.to_string final))

(* Acceptance: iterate 3 runs end-to-end on all 18 workloads and each
   later generation re-instruments exactly the routines the optimizers
   dirtied — every untouched routine keeps its placement — with the
   session's invalidation counter accounting for the dirty set. *)
let test_iterate_all_workloads () =
  List.iter
    (fun (b : Spec.bench) ->
      let name = b.Spec.bench_name in
      let p = b.Spec.build ~scale:1 in
      let s = Session.create ~name () in
      let gens = H.reoptimize ~session:s ~iterations:3 ~name p in
      Alcotest.(check int) (name ^ ": three generations") 3 (List.length gens);
      List.iter
        (fun (g : H.generation) ->
          let total = List.length g.H.prep.H.optimized.Ir.routines in
          Alcotest.(check int)
            (Printf.sprintf "%s gen %d: every routine planned or reused" name
               g.H.gen)
            total
            (g.H.reinstrumented + g.H.reused_plans);
          if g.H.gen > 1 then begin
            Alcotest.(check int)
              (Printf.sprintf "%s gen %d: re-instruments only dirtied routines"
                 name g.H.gen)
              (List.length g.H.dirty) g.H.reinstrumented;
            Alcotest.(check bool)
              (Printf.sprintf "%s gen %d: profile survives the round-trip" name
                 g.H.gen)
              true
              (g.H.matched_fraction > 0.99)
          end)
        gens;
      let dirty_later =
        List.fold_left
          (fun acc (g : H.generation) ->
            if g.H.gen > 1 then acc + List.length g.H.dirty else acc)
          0 gens
      in
      Alcotest.(check bool)
        (name ^ ": invalidations cover every dirtied routine")
        true
        ((Session.stats s).Session.invalidations
        >= List.length p.Ir.routines + dirty_later))
    Spec.all

(* {2 Retention across generations} *)

let test_retention_flip_flop () =
  let b = bench "bzip2" in
  let p = b.Spec.build ~scale:1 in
  let s = Session.create ~name:"bzip2" () in
  let prep = H.prepare ~session:s ~name:"bzip2" p in
  (* The session last synced on the optimized program; flipping back to
     the original must hit the artifacts computed three generations ago
     — entries are keyed by fingerprint, not evicted by sync. *)
  ignore (Session.sync s p);
  let h0 = (Session.stats s).Session.hits in
  List.iter (fun r -> ignore (Session.view s r)) p.Ir.routines;
  let h1 = (Session.stats s).Session.hits in
  Alcotest.(check int) "original generation's views still cached"
    (List.length p.Ir.routines) (h1 - h0);
  ignore prep

let test_sync_idempotent () =
  let p = (bench "mcf").Spec.build ~scale:1 in
  let s = Session.create ~name:"mcf" () in
  let first = Session.sync s p in
  Alcotest.(check int) "first sync dirties everything"
    (List.length p.Ir.routines) (List.length first);
  let inv = (Session.stats s).Session.invalidations in
  Alcotest.(check (list string)) "re-syncing an unchanged program is a no-op"
    [] (Session.sync s p);
  Alcotest.(check int) "no-op sync invalidates nothing" inv
    (Session.stats s).Session.invalidations

let test_disabled_session_counts_misses () =
  let p = (bench "mcf").Spec.build ~scale:1 in
  let s = Session.create ~enabled:false ~name:"mcf" () in
  ignore (Session.sync s p);
  List.iter (fun r -> ignore (Session.view s r)) p.Ir.routines;
  List.iter (fun r -> ignore (Session.view s r)) p.Ir.routines;
  let st = Session.stats s in
  Alcotest.(check int) "disabled session never hits" 0 st.Session.hits;
  Alcotest.(check int) "disabled session counts every lookup as a miss"
    (2 * List.length p.Ir.routines)
    st.Session.misses

(* {2 Composition with sharded collection} *)

let test_shard_warm_identical () =
  let benches = [ bench "vpr"; bench "mcf"; bench "art" ] in
  let cold = Shard.collect_workloads ~jobs:2 benches in
  let warm = Shard.collect_workloads ~jobs:2 ~warm:true benches in
  Alcotest.(check (list string)) "no workers lost" []
    (List.map (Format.asprintf "%a" Ppp_resilience.Diagnostic.pp)
       (cold.Shard.lost @ warm.Shard.lost));
  Alcotest.(check string) "warm parent sessions leave the merged dump intact"
    (Profile_io.Raw.to_string cold.Shard.raw)
    (Profile_io.Raw.to_string warm.Shard.raw)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_warm_cold_identical;
    Alcotest.test_case "warm/cold identical on workloads" `Quick
      test_warm_cold_workloads;
    Alcotest.test_case "warm session halves the analysis work" `Quick
      test_work_ratio;
    Alcotest.test_case "each routine lowers at most once per generation" `Quick
      test_lower_once_per_generation;
    Alcotest.test_case "iterate equals manual round-trips" `Quick
      test_iterate_equals_manual;
    QCheck_alcotest.to_alcotest prop_iterate_equals_manual;
    Alcotest.test_case "iterate 3 is incremental on all workloads" `Slow
      test_iterate_all_workloads;
    Alcotest.test_case "artifacts survive generation flip-flop" `Quick
      test_retention_flip_flop;
    Alcotest.test_case "sync is idempotent" `Quick test_sync_idempotent;
    Alcotest.test_case "disabled sessions count misses" `Quick
      test_disabled_session_counts_misses;
    Alcotest.test_case "warm shard parents keep collection identical" `Quick
      test_shard_warm_identical;
  ]
