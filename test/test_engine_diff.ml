(* Differential testing of the two execution engines: the flat VM must be
   byte-identical to the reference tree-walker on every observable — return
   value, output, base/instrumentation cost, termination, edge profiles,
   path profiles, frequency-table state, and the interp.*/rt.* metrics —
   across all 18 workloads x {none, PP, TPP, PPP} x {full, starved fuel},
   plus QCheck-generated random programs and a fine-grained fuel sweep
   that walks the exhaustion point through batched segments. *)

module Graph = Ppp_cfg.Graph
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module Interp = Ppp_interp.Interp
module Instr_rt = Ppp_interp.Instr_rt
module Spec = Ppp_workloads.Spec
module Gen = Ppp_workloads.Gen
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument
module Obs = Ppp_obs.Metrics

(* Render everything observable about an outcome into one canonical
   string; two engines agree iff their digests are equal, and Alcotest
   shows both sides on a mismatch. *)
let digest (p : Ir.program) (o : Interp.outcome) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.bprintf b fmt in
  pf "ret=%s\n"
    (match o.Interp.return_value with
    | None -> "-"
    | Some v -> string_of_int v);
  pf "out=%s\n" (String.concat "," (List.map string_of_int o.Interp.output));
  pf "base=%d instr=%d dyn_instrs=%d dyn_paths=%d\n" o.Interp.base_cost
    o.Interp.instr_cost o.Interp.dyn_instrs o.Interp.dyn_paths;
  (pf "term=%s\n"
     (match o.Interp.termination with
     | Interp.Finished -> "finished"
     | Interp.Out_of_fuel { stack_depth } ->
         Printf.sprintf "out_of_fuel(depth=%d)" stack_depth));
  let routines =
    List.sort compare (List.map (fun (r : Ir.routine) -> r.Ir.name) p.Ir.routines)
  in
  (match o.Interp.edge_profile with
  | None -> pf "edges=none\n"
  | Some ep ->
      List.iter
        (fun name ->
          let view = Cfg_view.of_routine (Ir.routine p name) in
          let n = Graph.num_edges (Cfg_view.graph view) in
          pf "edges %s:" name;
          for e = 0 to n - 1 do
            pf " %d" (Edge_profile.routine_freq ep name e)
          done;
          pf "\n")
        routines);
  (match o.Interp.path_profile with
  | None -> pf "paths=none\n"
  | Some pp ->
      List.iter
        (fun name ->
          let t = Path_profile.routine pp name in
          let entries =
            Path_profile.fold t ~init:[] ~f:(fun acc path n -> (path, n) :: acc)
            |> List.sort compare
          in
          pf "paths %s:" name;
          List.iter
            (fun (path, n) ->
              pf " [%s]=%d"
                (String.concat "-" (List.map string_of_int path))
                n)
            entries;
          pf "\n")
        routines);
  (match o.Interp.instr_state with
  | None -> pf "tables=none\n"
  | Some state ->
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) state [] in
      List.iter
        (fun name ->
          let t = Hashtbl.find state name in
          let entries = ref [] in
          Instr_rt.Table.iter_nonzero t (fun k n -> entries := (k, n) :: !entries);
          pf "table %s:" name;
          List.iter (fun (k, n) -> pf " %d=%d" k n) (List.sort compare !entries);
          pf " cold=%d lost=%d overflow=%d saturated=%b total=%d\n"
            (Instr_rt.Table.cold t) (Instr_rt.Table.lost t)
            (Instr_rt.Table.overflow t)
            (Instr_rt.Table.saturated t)
            (Instr_rt.Table.dynamic_total t))
        (List.sort compare names));
  Buffer.contents b

let check_diff label config p =
  let r = Interp.run ~engine:Interp.Reference ~config p in
  let v = Interp.run ~engine:Interp.Vm ~config p in
  Alcotest.(check string) label (digest p r) (digest p v)

let prior_edges p =
  match
    (Interp.run ~engine:Interp.Reference ~config:Interp.default_config p)
      .Interp.edge_profile
  with
  | Some ep -> ep
  | None -> Alcotest.fail "no edge profile from the prior run"

let methods p =
  let ep = prior_edges p in
  [
    ("none", None);
    ("pp", Some (Instrument.instrument p ep Config.pp).Instrument.rt);
    ("tpp", Some (Instrument.instrument p ep Config.tpp).Instrument.rt);
    ("ppp", Some (Instrument.instrument p ep Config.ppp).Instrument.rt);
  ]

let check_program name p =
  List.iter
    (fun (mname, instrumentation) ->
      List.iter
        (fun (fname, fuel) ->
          let config =
            { Interp.default_config with Interp.instrumentation; fuel }
          in
          check_diff (Printf.sprintf "%s/%s/%s" name mname fname) config p)
        [ ("full", Interp.default_config.Interp.fuel); ("starved", 5_000) ])
    (methods p)

let workload_case (bench : Spec.bench) =
  Alcotest.test_case bench.Spec.bench_name `Quick (fun () ->
      check_program bench.Spec.bench_name (bench.Spec.build ~scale:1))

(* Walk the exhaustion point instruction by instruction through the
   first few thousand charges: every off-by-one in segment batching or
   the remainder bill shows up here. *)
let fuel_sweep () =
  let p = (Spec.find "bzip2").Spec.build ~scale:1 in
  let instrumentation =
    Some (Instrument.instrument p (prior_edges p) Config.ppp).Instrument.rt
  in
  for fuel = 1 to 120 do
    let config = { Interp.default_config with Interp.instrumentation; fuel } in
    check_diff (Printf.sprintf "fuel=%d" fuel) config p
  done;
  List.iter
    (fun fuel ->
      let config = { Interp.default_config with Interp.instrumentation; fuel } in
      check_diff (Printf.sprintf "fuel=%d" fuel) config p)
    [ 503; 2_000; 10_007; 60_013 ]

(* The overflow-bin policy mutates tables on unattributable paths; make
   sure that state machine agrees across engines too. *)
let overflow_policy () =
  let p = (Spec.find "perlbmk").Spec.build ~scale:1 in
  let instrumentation =
    Some (Instrument.instrument p (prior_edges p) Config.pp).Instrument.rt
  in
  List.iter
    (fun cap ->
      let config =
        {
          Interp.default_config with
          Interp.instrumentation;
          overflow_policy = Instr_rt.Table.Overflow_bin { cap };
        }
      in
      check_diff (Printf.sprintf "overflow cap=%d" cap) config p)
    [ 1; 16; Instr_rt.Table.default_overflow_cap ]

(* With edge collection and tracing off (the benchmark configuration)
   the engines must still agree on costs and termination. *)
let bare_config () =
  List.iter
    (fun (bench : Spec.bench) ->
      let p = bench.Spec.build ~scale:1 in
      let config =
        {
          Interp.default_config with
          Interp.collect_edges = false;
          trace_paths = false;
        }
      in
      check_diff (bench.Spec.bench_name ^ "/bare") config p)
    Spec.all

(* The interp.* and rt.* metrics streams must be engine-invariant. *)
let metrics_diff () =
  let p = (Spec.find "vpr").Spec.build ~scale:1 in
  let instrumentation =
    Some (Instrument.instrument p (prior_edges p) Config.ppp).Instrument.rt
  in
  let config = { Interp.default_config with Interp.instrumentation } in
  let snapshot engine =
    Obs.set_enabled true;
    Obs.reset ();
    ignore (Interp.run ~engine ~config p);
    let s = Obs.snapshot () in
    Obs.set_enabled false;
    List.filter_map
      (fun (name, v) ->
        match v with
        | Obs.Counter n
          when n > 0
               && (String.length name >= 7 && String.sub name 0 7 = "interp."
                  || (String.length name >= 3 && String.sub name 0 3 = "rt.")) ->
            Some (Printf.sprintf "%s=%d" name n)
        | _ -> None)
      s
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let r = snapshot Interp.Reference in
      let v = snapshot Interp.Vm in
      Alcotest.(check (list string)) "interp.*/rt.* counters" r v)

let qcheck_diff =
  QCheck.Test.make ~count:40 ~name:"random programs: Vm = Reference"
    QCheck.(small_int)
    (fun seed ->
      let p = Gen.program ~seed in
      check_program (Printf.sprintf "gen(seed=%d)" seed) p;
      (* Also starve the generated program near its actual cost, where
         exhaustion lands mid-program rather than never. *)
      let full = Interp.run ~engine:Interp.Reference p in
      let fuel = max 1 (full.Interp.dyn_instrs / 2) in
      check_diff
        (Printf.sprintf "gen(seed=%d)/half-fuel" seed)
        { Interp.default_config with Interp.fuel }
        p;
      true)

let suite =
  List.map workload_case Spec.all
  @ [
      Alcotest.test_case "fuel sweep" `Quick fuel_sweep;
      Alcotest.test_case "overflow policy" `Quick overflow_policy;
      Alcotest.test_case "bare config" `Quick bare_config;
      Alcotest.test_case "metrics" `Quick metrics_diff;
      QCheck_alcotest.to_alcotest qcheck_diff;
    ]
