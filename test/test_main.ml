let () =
  Alcotest.run "ppp"
    [
      ("cfg", Test_cfg.suite);
      ("ir", Test_ir.suite);
      ("interp", Test_interp.suite);
      ("flow", Test_flow.suite);
      ("core", Test_core.suite);
      ("opt", Test_opt.suite);
      ("place", Test_place.suite);
      ("superblock", Test_superblock.suite);
      ("workloads", Test_workloads.suite);
      ("harness", Test_harness.suite);
      ("semantics", Test_semantics.suite);
      ("instrument", Test_instrument.suite);
      ("properties", Test_properties.suite);
      ("io", Test_io.suite);
      ("misc", Test_misc.suite);
      ("obs", Test_obs.suite);
      ("table_stats", Test_table_stats.suite);
      ("resilience", Test_resilience.suite);
      ("merge_props", Test_merge_props.suite);
      ("shard", Test_shard.suite);
      ("session", Test_session.suite);
      ("engine-diff", Test_engine_diff.suite);
      ("sampling", Test_sampling.suite);
      ("layout", Test_layout.suite);
      ("quality", Test_quality.suite);
      ("daemon", Test_daemon.suite);
      ("tier", Test_tier.suite);
    ]
