(* Profile serialization and instrumentation pretty-printing. *)

module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module Profile_io = Ppp_profile.Profile_io
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument

let check_bool = Alcotest.(check bool)

let dump p (o : Interp.outcome) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Profile_io.save_edges ppf p (Option.get o.Interp.edge_profile);
  Profile_io.save_paths ppf p (Option.get o.Interp.path_profile);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let profiles_equal p (ep1, pp1) (ep2, pp2) =
  List.for_all
    (fun (r : Ir.routine) ->
      let view = Ppp_ir.Cfg_view.of_routine r in
      let g = Ppp_ir.Cfg_view.graph view in
      let t1 = Edge_profile.routine ep1 r.Ir.name in
      let t2 = Edge_profile.routine ep2 r.Ir.name in
      let edges_ok = ref true in
      Ppp_cfg.Graph.iter_edges g (fun e ->
          if Edge_profile.freq t1 e <> Edge_profile.freq t2 e then edges_ok := false);
      let q1 = Path_profile.routine pp1 r.Ir.name in
      let q2 = Path_profile.routine pp2 r.Ir.name in
      let paths_ok = ref (Path_profile.num_distinct q1 = Path_profile.num_distinct q2) in
      Path_profile.iter q1 (fun path n ->
          if Path_profile.freq q2 path <> n then paths_ok := false);
      !edges_ok && !paths_ok)
    p.Ir.routines

let dump_v2 p (o : Interp.outcome) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Profile_io.save ?edges:o.Interp.edge_profile ?paths:o.Interp.path_profile ppf
    p;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let clean_roundtrip p (o : Interp.outcome) text =
  match Profile_io.load p text with
  | Error _ -> false
  | Ok l ->
      l.Profile_io.diagnostics = []
      && l.Profile_io.matched_fraction = 1.0
      && profiles_equal p
           (Option.get o.Interp.edge_profile, Option.get o.Interp.path_profile)
           (l.Profile_io.edges, l.Profile_io.paths)

let prop_profile_roundtrip =
  QCheck.Test.make ~name:"profile save/load roundtrip (v1 and v2)" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o = Interp.run p in
      clean_roundtrip p o (dump p o) && clean_roundtrip p o (dump_v2 p o))

(* Every built-in workload roundtrips bit-exactly through the validated
   v2 format, plus the degenerate empty-profile and comment-heavy dumps. *)
let test_v2_roundtrip_all_benches () =
  List.iter
    (fun (b : Ppp_workloads.Spec.bench) ->
      let p = b.Ppp_workloads.Spec.build ~scale:1 in
      let o = Interp.run p in
      check_bool
        ("v2 roundtrip " ^ b.Ppp_workloads.Spec.bench_name)
        true
        (clean_roundtrip p o (dump_v2 p o)))
    Ppp_workloads.Spec.all

let test_v2_empty_profile () =
  let p = Ppp_workloads.Gen.program ~seed:3 in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Profile_io.save ppf p;
  Format.pp_print_flush ppf ();
  match Profile_io.load p (Buffer.contents buf) with
  | Error _ -> Alcotest.fail "empty v2 profile rejected"
  | Ok l ->
      check_bool "no diagnostics" true (l.Profile_io.diagnostics = []);
      check_bool "full confidence" true (l.Profile_io.matched_fraction = 1.0)

let test_v2_comment_heavy () =
  let p = Ppp_workloads.Gen.program ~seed:5 in
  let o = Interp.run p in
  (* Comments and blanks are legal between top-level v2 items (inside a
     section they would be part of the checksummed payload). *)
  let text =
    dump_v2 p o
    |> String.split_on_char '\n'
    |> List.concat_map (fun line ->
           if
             line = "end"
             || String.length line >= 4
                && (String.sub line 0 4 = "cfg " || String.sub line 0 4 = "sect")
           then [ "# comment"; ""; line ]
           else [ line ])
    |> String.concat "\n"
  in
  check_bool "comment-heavy v2 roundtrips" true (clean_roundtrip p o text)

let test_load_classifies_garbage () =
  let p = Ppp_workloads.Gen.program ~seed:1 in
  (* Bad input never raises: it comes back as classified diagnostics,
     either alongside whatever was salvaged or as an outright Error. *)
  let expect_diag text =
    match Profile_io.load p text with
    | Ok l ->
        check_bool "garbage yields a diagnostic" true
          (l.Profile_io.diagnostics <> [])
    | Error ds -> check_bool "error carries diagnostics" true (ds <> [])
    | exception e ->
        Alcotest.failf "load raised %s" (Printexc.to_string e)
  in
  expect_diag "edge-profile\ne0 5"; (* counter before routine header *)
  expect_diag "edge-profile\nroutine nonexistent\ne0 5";
  expect_diag "edge-profile\nroutine main\nbogus line here";
  expect_diag "path-profile\nroutine main\nnot-a-number : 0 1"

let test_load_tolerates_comments_and_blanks () =
  let p = Ppp_workloads.Gen.program ~seed:1 in
  let o = Interp.run p in
  let text = "# a comment\n\n" ^ dump p o ^ "\n# trailing\n" in
  match Profile_io.load p text with
  | Ok l -> check_bool "no diagnostics" true (l.Profile_io.diagnostics = [])
  | Error _ -> Alcotest.fail "comments should be tolerated"

let test_pp_plan_renders () =
  let p = (Ppp_workloads.Spec.find "gap").Ppp_workloads.Spec.build ~scale:1 in
  let o = Interp.run p in
  let ep = Option.get o.Interp.edge_profile in
  let render config =
    let inst = Instrument.instrument p ep config in
    let buf = Buffer.create 1024 in
    let ppf = Format.formatter_of_buffer buf in
    Hashtbl.iter
      (fun _ plan -> Format.fprintf ppf "%a@." Instrument.pp_plan plan)
      inst.Instrument.plans;
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let s = render Config.pp in
  check_bool "pp plan mentions counts" true
    (String.length s > 100
    &&
    let has sub =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    has "count[" && has "numbered paths");
  ignore (render Config.ppp)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_profile_roundtrip;
    Alcotest.test_case "v2 roundtrip on all benches" `Quick
      test_v2_roundtrip_all_benches;
    Alcotest.test_case "v2 empty profile" `Quick test_v2_empty_profile;
    Alcotest.test_case "v2 comment-heavy" `Quick test_v2_comment_heavy;
    Alcotest.test_case "load classifies garbage" `Quick
      test_load_classifies_garbage;
    Alcotest.test_case "load tolerates comments" `Quick test_load_tolerates_comments_and_blanks;
    Alcotest.test_case "pp_plan renders" `Quick test_pp_plan_renders;
  ]
