(* The resilience layer: CRC and fingerprint primitives, stale-profile
   matching, fault injection never crashing the loader, and the pipeline
   consuming a salvaged profile with degraded confidence. *)

module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Profile_io = Ppp_profile.Profile_io
module Crc = Ppp_resilience.Crc
module Fingerprint = Ppp_resilience.Fingerprint
module Stale_match = Ppp_resilience.Stale_match
module Faults = Ppp_resilience.Faults
module Diagnostic = Ppp_resilience.Diagnostic
module Config = Ppp_core.Config
module H = Ppp_harness.Pipeline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dump_v2 p (o : Interp.outcome) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Profile_io.save ?edges:o.Interp.edge_profile ?paths:o.Interp.path_profile ppf
    p;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* {2 Primitives} *)

let test_crc_known_answer () =
  (* The CRC-32 (IEEE) check value. *)
  Alcotest.(check string) "123456789" "cbf43926" (Crc.to_hex (Crc.string "123456789"));
  check_bool "empty" true (Crc.string "" = 0l);
  check_bool "of_hex inverts" true
    (Crc.of_hex (Crc.to_hex (Crc.string "abc")) = Some (Crc.string "abc"));
  check_bool "of_hex rejects junk" true (Crc.of_hex "xyzw1234" = None);
  check_bool "of_hex rejects short" true (Crc.of_hex "12ab" = None);
  (* Chained update equals one-shot. *)
  check_bool "update chains" true
    (Crc.update (Crc.string "1234") "56789" = Crc.string "123456789")

let parse src = Ppp_ir.Parse.program_of_string src

let test_fingerprint_strict_vs_loose () =
  let p1 =
    parse "routine main(0) regs 2 {\nentry:\n  r0 = 1\n  r1 = r0 + 2\n  ret r1\n}"
  in
  let p2 =
    parse "routine main(0) regs 2 {\nentry:\n  r0 = 7\n  r1 = r0 + 9\n  ret r1\n}"
  in
  let r1 = List.hd p1.Ir.routines and r2 = List.hd p2.Ir.routines in
  let b1 = r1.Ir.blocks.(0) and b2 = r2.Ir.blocks.(0) in
  check_bool "deterministic" true
    (Fingerprint.block_strict b1 = Fingerprint.block_strict b1);
  check_bool "constant tweak changes strict" true
    (Fingerprint.block_strict b1 <> Fingerprint.block_strict b2);
  check_bool "constant tweak keeps loose" true
    (Fingerprint.block_loose b1 = Fingerprint.block_loose b2);
  check_bool "routine fingerprint differs" true
    (Fingerprint.routine r1 <> Fingerprint.routine r2);
  check_bool "hex roundtrip" true
    (Fingerprint.of_hex (Fingerprint.to_hex (Fingerprint.routine r1))
    = Some (Fingerprint.routine r1))

let test_stale_match_inserted_block () =
  (* v2 of the routine gains a fresh block on the cold arm; every v1
     block still matches (by strict hash or label), and the edges along
     the surviving structure re-map. *)
  let old_r =
    List.hd
      (parse
         "routine main(0) regs 2 {\n\
          entry:\n\
         \  r0 = 10\n\
          jump head\n\
          head:\n\
         \  r1 = r0 < 5\n\
          br r1, cold, hot\n\
          cold:\n\
         \  r0 = r0 + 1\n\
          jump head\n\
          hot:\n\
         \  ret r0\n\
          }")
        .Ir.routines
  in
  let new_r =
    List.hd
      (parse
         "routine main(0) regs 2 {\n\
          entry:\n\
         \  r0 = 10\n\
          jump head\n\
          head:\n\
         \  r1 = r0 < 5\n\
          br r1, fresh, hot\n\
          fresh:\n\
         \  out r0\n\
          jump cold\n\
          cold:\n\
         \  r0 = r0 + 1\n\
          jump head\n\
          hot:\n\
         \  ret r0\n\
          }")
        .Ir.routines
  in
  let old_desc = Stale_match.describe old_r in
  let new_desc = Stale_match.describe new_r in
  let m = Stale_match.match_cfgs ~old_desc ~new_desc in
  check_int "all four old blocks matched" 4 m.Stale_match.matched_blocks;
  check_bool "entry maps to entry" true (m.Stale_match.block_map.(0) = 0);
  check_bool "some edges salvaged" true (m.Stale_match.matched_edges > 0);
  (* Identical descriptions match perfectly. *)
  let id = Stale_match.match_cfgs ~old_desc ~new_desc:old_desc in
  check_int "identity matches all blocks" 4 id.Stale_match.matched_blocks;
  check_int "identity matches all edges"
    (Array.length old_desc.Stale_match.edges)
    id.Stale_match.matched_edges

(* {2 Fault injection} *)

let test_faults_deterministic () =
  let text = "ppp-profile v2\nsection edges crc=00000000 lines=0\nend\n" in
  List.iter
    (fun fault ->
      let a = Faults.apply (Faults.rng ~seed:7) fault text in
      let b = Faults.apply (Faults.rng ~seed:7) fault text in
      check_bool (Faults.name fault ^ " deterministic") true (a = b);
      check_bool (Faults.name fault ^ " really perturbs") true (a <> text);
      check_bool "name roundtrips" true
        (Faults.of_name (Faults.name fault) = Some fault))
    Faults.all

let test_fuzzed_loads_never_raise () =
  let r = Faults.rng ~seed:42 in
  List.iter
    (fun bench ->
      let p = (Ppp_workloads.Spec.find bench).Ppp_workloads.Spec.build ~scale:1 in
      let o = Interp.run p in
      let pristine = dump_v2 p o in
      List.iter
        (fun fault ->
          (* Several perturbations per fault kind, different each time. *)
          for _ = 1 to 4 do
            let mutated = Faults.apply r fault pristine in
            match Profile_io.load p mutated with
            | Ok l ->
                check_bool
                  (bench ^ ": " ^ Faults.name fault ^ " classified")
                  true
                  (l.Profile_io.diagnostics <> [])
            | Error ds ->
                check_bool
                  (bench ^ ": " ^ Faults.name fault ^ " classified")
                  true (ds <> [])
            | exception e ->
                Alcotest.failf "%s: %s raised %s" bench (Faults.name fault)
                  (Printexc.to_string e)
          done)
        Faults.all)
    [ "vpr"; "art"; "gap" ]

(* {2 Stale profiles end to end} *)

(* Append a no-op move to one routine's entry block: semantics are
   unchanged but the strict hash (hence the fingerprint) shifts, which is
   exactly the "recompiled since the profile was collected" situation. *)
let edit_one_routine p =
  let victim =
    match
      List.find_opt
        (fun (r : Ir.routine) -> r.Ir.name <> p.Ir.main && r.Ir.nregs > 0)
        p.Ir.routines
    with
    | Some r -> r.Ir.name
    | None -> (List.hd p.Ir.routines).Ir.name
  in
  let routines =
    List.map
      (fun (r : Ir.routine) ->
        if r.Ir.name <> victim then r
        else begin
          let blocks = Array.copy r.Ir.blocks in
          let b0 = blocks.(0) in
          let reg = r.Ir.nregs - 1 in
          blocks.(0) <-
            {
              b0 with
              Ir.instrs =
                Array.append [| Ir.Mov (reg, Ir.Reg reg) |] b0.Ir.instrs;
            };
          { r with Ir.blocks = blocks }
        end)
      p.Ir.routines
  in
  ({ p with Ir.routines }, victim)

let test_stale_profile_salvaged () =
  let p = (Ppp_workloads.Spec.find "gap").Ppp_workloads.Spec.build ~scale:1 in
  let o = Interp.run p in
  let text = dump_v2 p o in
  let p', victim = edit_one_routine p in
  match Profile_io.load p' text with
  | Error ds ->
      Alcotest.failf "stale profile rejected outright: %a" Diagnostic.pp_list
        ds
  | Ok l ->
      check_bool "one routine went stale" true (l.Profile_io.stale_routines >= 1);
      check_bool "stale diagnostic names the routine" true
        (List.exists
           (fun (d : Diagnostic.t) ->
             d.Diagnostic.kind = Diagnostic.Stale
             && d.Diagnostic.routine = Some victim)
           l.Profile_io.diagnostics);
      check_bool "matched fraction positive" true
        (l.Profile_io.matched_fraction > 0.0);
      check_bool "matched fraction sane" true
        (l.Profile_io.matched_fraction <= 1.0);
      check_bool "counts were salvaged" true (l.Profile_io.salvaged_counts > 0);
      (* The salvaged profile still drives the optimizer. *)
      let prep = H.prepare_with_profile ~name:"stale-gap" ~loaded:l p' in
      check_bool "confidence tracks the matched fraction" true
        (prep.H.confidence = l.Profile_io.matched_fraction);
      check_bool "stale diagnostics carried into the pipeline" true
        (List.exists
           (fun (d : Diagnostic.t) -> d.Diagnostic.kind = Diagnostic.Stale)
           prep.H.diagnostics);
      check_bool "inlining still ran" true
        (prep.H.inline_stats.Ppp_opt.Inline.sites_inlined >= 0);
      let ev = H.evaluate prep Config.ppp in
      check_bool "evaluation completes on a salvaged profile" true
        (ev.H.accuracy >= 0.0 && ev.H.accuracy <= 1.0)

let test_truncated_profile_diagnosed () =
  let p = Ppp_workloads.Gen.program ~seed:11 in
  let o = Interp.run p in
  let text = dump_v2 p o in
  let cut = String.sub text 0 (String.length text / 2) in
  match Profile_io.load p cut with
  | Ok l ->
      check_bool "truncation diagnosed" true
        (List.exists
           (fun (d : Diagnostic.t) ->
             d.Diagnostic.kind = Diagnostic.Truncated)
           l.Profile_io.diagnostics)
  | Error ds ->
      check_bool "truncation diagnosed" true
        (List.exists
           (fun (d : Diagnostic.t) ->
             d.Diagnostic.kind = Diagnostic.Truncated)
           ds)

(* {2 Degradation} *)

let test_config_degrade () =
  let full = Config.degrade ~confidence:1.0 Config.ppp in
  check_bool "full confidence is identity" true (full = Config.ppp);
  let half = Config.degrade ~confidence:0.5 Config.ppp in
  check_bool "name marks degradation" true (half.Config.name = "ppp+degraded");
  check_bool "local ratio shrinks" true
    (half.Config.local_ratio < Config.ppp.Config.local_ratio);
  check_bool "global fraction shrinks" true
    (half.Config.global_fraction = Some 0.0005);
  check_bool "low-coverage skip rises" true
    (match (half.Config.low_coverage_skip, Config.ppp.Config.low_coverage_skip) with
    | Some d, Some o -> d > o && d <= 1.0
    | _ -> false);
  (* Out-of-range confidence is clamped, not propagated. *)
  let zero = Config.degrade ~confidence:(-3.0) Config.ppp in
  check_bool "clamped at zero" true (zero.Config.local_ratio = 0.0)

let test_fuel_exhaustion_is_an_outcome () =
  let p = (Ppp_workloads.Spec.find "mcf").Ppp_workloads.Spec.build ~scale:1 in
  let o = Interp.run ~config:{ Interp.default_config with fuel = 50 } p in
  (match o.Interp.termination with
  | Interp.Out_of_fuel { stack_depth } ->
      check_bool "stack depth reported" true (stack_depth >= 1)
  | Interp.Finished -> Alcotest.fail "expected exhaustion");
  check_bool "partial profile returned" true (o.Interp.edge_profile <> None)

let suite =
  [
    Alcotest.test_case "crc known answer" `Quick test_crc_known_answer;
    Alcotest.test_case "fingerprint strict vs loose" `Quick
      test_fingerprint_strict_vs_loose;
    Alcotest.test_case "stale match with inserted block" `Quick
      test_stale_match_inserted_block;
    Alcotest.test_case "faults deterministic" `Quick test_faults_deterministic;
    Alcotest.test_case "fuzzed loads never raise" `Quick
      test_fuzzed_loads_never_raise;
    Alcotest.test_case "stale profile salvaged" `Quick
      test_stale_profile_salvaged;
    Alcotest.test_case "truncated profile diagnosed" `Quick
      test_truncated_profile_diagnosed;
    Alcotest.test_case "config degrade" `Quick test_config_degrade;
    Alcotest.test_case "fuel exhaustion is an outcome" `Quick
      test_fuel_exhaustion_is_an_outcome;
  ]
