(* Bursty sampled collection, tested as a transparency contract: sampling
   gates only the instrumentation actions, so the program outcome — return
   value, output, base cost, dynamic instruction and path counts,
   termination, and the engine's exact edge/path profiles — must be
   byte-identical between a sampled and an unsampled run, on both engines,
   at every rate and fuel budget. On top of that: rate 1 with an infinite
   burst reproduces today's instrumented runs exactly (frequency tables
   included), the two engines stay byte-identical under any sampling spec,
   and sampled collection plus the decayed fleet merge are deterministic
   and [-j]-invariant over a large heterogeneous dump population. *)

module Graph = Ppp_cfg.Graph
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module Raw = Ppp_profile.Profile_io.Raw
module Interp = Ppp_interp.Interp
module Instr_rt = Ppp_interp.Instr_rt
module Sampling = Ppp_interp.Sampling
module Spec = Ppp_workloads.Spec
module Gen = Ppp_workloads.Gen
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument
module Shard = Ppp_harness.Shard

(* The program-outcome digest: everything the program itself observes or
   produces. Instrumentation cost and frequency-table state are excluded
   on purpose — they are the only things sampling is allowed to change. *)
let outcome_digest (p : Ir.program) (o : Interp.outcome) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.bprintf b fmt in
  pf "ret=%s\n"
    (match o.Interp.return_value with
    | None -> "-"
    | Some v -> string_of_int v);
  pf "out=%s\n" (String.concat "," (List.map string_of_int o.Interp.output));
  pf "base=%d dyn_instrs=%d dyn_paths=%d\n" o.Interp.base_cost
    o.Interp.dyn_instrs o.Interp.dyn_paths;
  pf "term=%s\n"
    (match o.Interp.termination with
    | Interp.Finished -> "finished"
    | Interp.Out_of_fuel { stack_depth } ->
        Printf.sprintf "out_of_fuel(depth=%d)" stack_depth);
  let routines =
    List.sort compare
      (List.map (fun (r : Ir.routine) -> r.Ir.name) p.Ir.routines)
  in
  (match o.Interp.edge_profile with
  | None -> pf "edges=none\n"
  | Some ep ->
      List.iter
        (fun name ->
          let view = Cfg_view.of_routine (Ir.routine p name) in
          let n = Graph.num_edges (Cfg_view.graph view) in
          pf "edges %s:" name;
          for e = 0 to n - 1 do
            pf " %d" (Edge_profile.routine_freq ep name e)
          done;
          pf "\n")
        routines);
  (match o.Interp.path_profile with
  | None -> pf "paths=none\n"
  | Some pp ->
      List.iter
        (fun name ->
          let t = Path_profile.routine pp name in
          let entries =
            Path_profile.fold t ~init:[] ~f:(fun acc path n ->
                (path, n) :: acc)
            |> List.sort compare
          in
          pf "paths %s:" name;
          List.iter
            (fun (path, n) ->
              pf " [%s]=%d"
                (String.concat "-" (List.map string_of_int path))
                n)
            entries;
          pf "\n")
        routines);
  Buffer.contents b

(* The full digest adds what sampling IS allowed to change; used where
   exact reproduction is the contract (rate 1 / infinite burst) and for
   the cross-engine agreement check. *)
let full_digest p (o : Interp.outcome) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.bprintf b fmt in
  pf "%s" (outcome_digest p o);
  pf "instr=%d\n" o.Interp.instr_cost;
  (match o.Interp.instr_state with
  | None -> pf "tables=none\n"
  | Some state ->
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) state [] in
      List.iter
        (fun name ->
          let t = Hashtbl.find state name in
          let entries = ref [] in
          Instr_rt.Table.iter_nonzero t (fun k n ->
              entries := (k, n) :: !entries);
          pf "table %s:" name;
          List.iter
            (fun (k, n) -> pf " %d=%d" k n)
            (List.sort compare !entries);
          pf " cold=%d lost=%d overflow=%d saturated=%b total=%d\n"
            (Instr_rt.Table.cold t) (Instr_rt.Table.lost t)
            (Instr_rt.Table.overflow t)
            (Instr_rt.Table.saturated t)
            (Instr_rt.Table.dynamic_total t))
        (List.sort compare names));
  Buffer.contents b

let prior_edges p =
  match
    (Interp.run ~engine:Interp.Reference ~config:Interp.default_config p)
      .Interp.edge_profile
  with
  | Some ep -> ep
  | None -> Alcotest.fail "no edge profile from the prior run"

let ppp_rt p = (Instrument.instrument p (prior_edges p) Config.ppp).Instrument.rt

let specs =
  [
    Sampling.spec ~denom:4 ~burst:2 ~seed:11 ();
    Sampling.spec ~denom:16 ~seed:7 ();
    Sampling.spec ~denom:256 ~burst:1 ~seed:3 ();
  ]

(* Sampling must not perturb the program outcome: for every workload,
   engine, and fuel budget, a sampled instrumented run's outcome digest
   equals the unsampled instrumented run's. *)
let check_transparent name p =
  let instrumentation = Some (ppp_rt p) in
  List.iter
    (fun engine ->
      let ename =
        match engine with Interp.Reference -> "ref" | Interp.Vm -> "vm"
      in
      List.iter
        (fun (fname, fuel) ->
          let base_config =
            { Interp.default_config with Interp.instrumentation; fuel }
          in
          let baseline =
            outcome_digest p (Interp.run ~engine ~config:base_config p)
          in
          List.iter
            (fun spec ->
              let o =
                Interp.run ~engine
                  ~config:{ base_config with Interp.sampling = Some spec }
                  p
              in
              Alcotest.(check string)
                (Printf.sprintf "%s/%s/%s/rate=%s" name ename fname
                   (Sampling.rate_to_string spec.Sampling.denom))
                baseline (outcome_digest p o))
            specs)
        [ ("full", Interp.default_config.Interp.fuel); ("starved", 5_000) ])
    [ Interp.Reference; Interp.Vm ]

let workload_case (bench : Spec.bench) =
  Alcotest.test_case bench.Spec.bench_name `Quick (fun () ->
      check_transparent bench.Spec.bench_name (bench.Spec.build ~scale:1))

(* Rate 1 with an infinite burst is not "almost" unsampled — it must
   reproduce today's instrumented runs exactly, frequency tables and
   instrumentation cost included, on both engines. *)
let rate_one_exact () =
  List.iter
    (fun bench_name ->
      let p = (Spec.find bench_name).Spec.build ~scale:1 in
      let instrumentation = Some (ppp_rt p) in
      let base_config = { Interp.default_config with Interp.instrumentation } in
      let spec =
        Sampling.spec ~denom:1 ~burst:Sampling.infinite_burst ~seed:99 ()
      in
      List.iter
        (fun engine ->
          let plain = full_digest p (Interp.run ~engine ~config:base_config p) in
          let sampled =
            full_digest p
              (Interp.run ~engine
                 ~config:{ base_config with Interp.sampling = Some spec }
                 p)
          in
          Alcotest.(check string)
            (bench_name ^ "/rate=1 burst=inf reproduces the unsampled run")
            plain sampled)
        [ Interp.Reference; Interp.Vm ])
    [ "vpr"; "bzip2"; "perlbmk" ]

(* The two engines must stay byte-identical under sampling — same burst
   phase, same recovered tables, same costs. *)
let engine_diff_sampled () =
  List.iter
    (fun bench_name ->
      let p = (Spec.find bench_name).Spec.build ~scale:1 in
      let instrumentation = Some (ppp_rt p) in
      List.iter
        (fun spec ->
          List.iter
            (fun fuel ->
              let config =
                {
                  Interp.default_config with
                  Interp.instrumentation;
                  fuel;
                  sampling = Some spec;
                }
              in
              let r = Interp.run ~engine:Interp.Reference ~config p in
              let v = Interp.run ~engine:Interp.Vm ~config p in
              Alcotest.(check string)
                (Printf.sprintf "%s/rate=%s/fuel=%d" bench_name
                   (Sampling.rate_to_string spec.Sampling.denom)
                   fuel)
                (full_digest p r) (full_digest p v))
            [ Interp.default_config.Interp.fuel; 5_000 ])
        specs)
    [ "vpr"; "crafty"; "twolf" ]

(* Sampled collection through the shard layer is a pure function of
   (spec, program): same bytes on every call. *)
let collect_sampled_deterministic () =
  let p = (Spec.find "vpr").Spec.build ~scale:1 in
  let spec = Sampling.spec ~denom:16 ~seed:5 () in
  let a = Raw.to_string (Shard.collect_sampled ~spec p) in
  let b = Raw.to_string (Shard.collect_sampled ~spec p) in
  Alcotest.(check string) "collect_sampled is deterministic" a b;
  (* and the dump round-trips bytes through parse *)
  Alcotest.(check string) "dump round-trips"
    a
    (Raw.to_string (Raw.parse a))

(* Sampled workload collection under the pool: the merged dump is
   byte-identical across [-j] levels because each workload's sampling
   seed derives from the pool seed and the workload's index only. *)
let collect_workloads_j_invariant () =
  let benches =
    List.filter
      (fun (b : Spec.bench) ->
        List.mem b.Spec.bench_name
          [ "vpr"; "mcf"; "crafty"; "bzip2"; "twolf"; "art" ])
      Spec.all
  in
  let sampling = Sampling.spec ~denom:16 ~seed:42 () in
  let run jobs =
    Raw.to_string (Shard.collect_workloads ~jobs ~sampling benches).Shard.raw
  in
  Alcotest.(check string) "-j1 == -j5" (run 1) (run 5)

(* The fleet merge: >= 100 heterogeneous dumps — partial runs at many
   fuels, cross-program name collisions (stale-fingerprint salvage), and
   sampled dumps at several rates — merged with decay. Deterministic,
   stable under serialization round-trips, and mass-conserving. *)
let decayed_merge_fleet () =
  let dumps = ref [] in
  for seed = 0 to 59 do
    let p = Gen.program ~seed in
    let fuel = 60 + (37 * seed mod 1_500) in
    let o = Interp.run ~config:{ Interp.default_config with fuel } p in
    dumps :=
      Raw.of_program ?edges:o.Interp.edge_profile ?paths:o.Interp.path_profile
        p
      :: !dumps
  done;
  for seed = 0 to 44 do
    let p = Gen.program ~seed:(seed * 3) in
    let denom = [| 4; 16; 64 |].(seed mod 3) in
    let spec = Sampling.spec ~denom ~seed ()
    in
    dumps := Shard.collect_sampled ~spec p :: !dumps
  done;
  let dumps = List.rev !dumps in
  Alcotest.(check bool) "population is >= 100" true (List.length dumps >= 100);
  let merged = Raw.merge_decayed ~decay:0.9 dumps in
  let once = Raw.to_string merged in
  let twice = Raw.to_string (Raw.merge_decayed ~decay:0.9 dumps) in
  Alcotest.(check string) "decayed merge is deterministic" once twice;
  let reparsed =
    Raw.merge_decayed ~decay:0.9
      (List.map (fun t -> Raw.parse (Raw.to_string t)) dumps)
  in
  Alcotest.(check string) "stable under serialization round-trip" once
    (Raw.to_string reparsed);
  let conserved t = Raw.mass t + Raw.lost t in
  Alcotest.(check int) "mass + lost ledger balances"
    (List.fold_left (fun acc t -> acc + conserved t) 0 dumps)
    (conserved merged);
  Alcotest.(check string) "decay=1.0 is the plain merge"
    (Raw.to_string (Raw.merge dumps))
    (Raw.to_string (Raw.merge_decayed ~decay:1.0 dumps))

(* The controller itself: rate parsing and the burst schedule's exact
   on/off arithmetic at the state-machine level. *)
let parse_rate_cases () =
  let ok s = match Sampling.parse_rate s with Ok d -> d | Error e ->
    Alcotest.failf "parse_rate %S: %s" s e
  in
  Alcotest.(check int) "1" 1 (ok "1");
  Alcotest.(check int) "1/16" 16 (ok "1/16");
  Alcotest.(check int) "64" 64 (ok "64");
  List.iter
    (fun s ->
      match Sampling.parse_rate s with
      | Ok d -> Alcotest.failf "parse_rate %S unexpectedly ok: %d" s d
      | Error _ -> ())
    [ ""; "0"; "1/0"; "2/3"; "-4"; "1/-2"; "x" ]

let burst_schedule () =
  let spec = Sampling.spec ~denom:4 ~burst:2 ~seed:123 () in
  let st = Sampling.start spec in
  let on = ref 0 and total = 10_000 in
  for _ = 1 to total do
    if Sampling.tick st then incr on
  done;
  let rate = float_of_int !on /. float_of_int total in
  if rate < 0.15 || rate > 0.35 then
    Alcotest.failf "burst duty cycle %.3f far from 1/4" rate;
  (* denom=1 is always on, whatever the burst *)
  let st1 = Sampling.start (Sampling.spec ~denom:1 ~burst:1 ~seed:0 ()) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "denom=1 always on" true (Sampling.tick st1)
  done

let suite =
  List.map workload_case Spec.all
  @ [
      Alcotest.test_case "rate=1 exact reproduction" `Quick rate_one_exact;
      Alcotest.test_case "engine diff under sampling" `Quick
        engine_diff_sampled;
      Alcotest.test_case "collect_sampled deterministic" `Quick
        collect_sampled_deterministic;
      Alcotest.test_case "collect_workloads -j invariant" `Quick
        collect_workloads_j_invariant;
      Alcotest.test_case "decayed fleet merge (100+ dumps)" `Quick
        decayed_merge_fleet;
      Alcotest.test_case "parse_rate" `Quick parse_rate_cases;
      Alcotest.test_case "burst schedule" `Quick burst_schedule;
    ]
