(* Differential testing of path-guided block layout: the VM must produce
   byte-identical outcomes — return value, output, costs, termination,
   edge/path profiles, table state — with and without a layout, across
   all 18 workloads x {none, PP, TPP, PPP} x {full, starved fuel}, for
   the path-guided order, for arbitrary valid permutations, and for
   invalid orders (which Lower must ignore defensively). Plus QCheck
   properties of the order itself: always a valid permutation with the
   entry first, never the identity, and the hottest path's trace laid
   out as the fall-through prefix. *)

module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Interp = Ppp_interp.Interp
module Layout = Ppp_interp.Layout
module Lower = Ppp_interp.Lower
module Score = Ppp_flow.Score
module Metric = Ppp_profile.Metric
module Spec = Ppp_workloads.Spec
module Gen = Ppp_workloads.Gen

let digest = Test_engine_diff.digest

let views p =
  let tbl = Hashtbl.create 17 in
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        let v = Cfg_view.of_routine (Ir.routine p name) in
        Hashtbl.add tbl name v;
        v

(* The layout the pipeline would compute: hot paths of the program's own
   recorded path profile, hottest first. *)
let layout_of p =
  let o = Interp.run p in
  let actual = Option.get o.Interp.path_profile in
  let entries =
    Score.hot_actual ~actual ~views:(views p) ~metric:Metric.Branch_flow
      ~threshold:0.0
  in
  Layout.of_hot_paths ~views:(views p) entries

let check_layout_invariant label p table =
  List.iter
    (fun (mname, instrumentation) ->
      List.iter
        (fun (fname, fuel) ->
          let config base_layout =
            {
              Interp.default_config with
              Interp.instrumentation;
              fuel;
              layout = base_layout;
            }
          in
          let off = Interp.run ~config:(config None) p in
          let on = Interp.run ~config:(config (Some table)) p in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s/%s layout on=off" label mname fname)
            (digest p off) (digest p on);
          (* The reference engine ignores the layout entirely; it must
             agree with the laid-out VM too. *)
          if mname = "ppp" && fname = "full" then
            let r =
              Interp.run ~engine:Interp.Reference ~config:(config (Some table))
                p
            in
            Alcotest.(check string)
              (Printf.sprintf "%s/%s/%s reference=laid-out vm" label mname
                 fname)
              (digest p r) (digest p on))
        [ ("full", Interp.default_config.Interp.fuel); ("starved", 5_000) ])
    (Test_engine_diff.methods p)

let workload_case (bench : Spec.bench) =
  Alcotest.test_case bench.Spec.bench_name `Quick (fun () ->
      let p = bench.Spec.build ~scale:1 in
      check_layout_invariant bench.Spec.bench_name p (layout_of p))

(* {2 Properties of the order itself} *)

(* Same total tie-break as [Layout.order_for]: weight descending, then
   the path; the property below pins the fall-through prefix to it. *)
let hottest_entry paths =
  List.fold_left
    (fun acc (p, w) ->
      match acc with
      | None -> Some (p, w)
      | Some (bp, bw) ->
          if w > bw || (w = bw && compare p bp < 0) then Some (p, w) else acc)
    None paths

let dedup blocks =
  let seen = Hashtbl.create 17 in
  List.filter
    (fun b ->
      if Hashtbl.mem seen b then false
      else begin
        Hashtbl.add seen b ();
        true
      end)
    blocks

let routine_paths p name =
  let o = Interp.run p in
  match o.Interp.path_profile with
  | None -> []
  | Some prof -> (
      match Ppp_profile.Path_profile.routine prof name with
      | exception Not_found -> []
      | t ->
          Ppp_profile.Path_profile.fold t ~init:[] ~f:(fun acc path n ->
              (path, n) :: acc))

let prop_valid_permutation =
  QCheck.Test.make ~count:50
    ~name:"order_for yields a valid non-identity permutation, entry first"
    QCheck.(small_int)
    (fun seed ->
      let p = Gen.program ~seed in
      let vs = views p in
      List.for_all
        (fun (r : Ir.routine) ->
          let paths = routine_paths p r.Ir.name in
          match Layout.order_for ~view:(vs r.Ir.name) paths with
          | None -> true
          | Some order ->
              Lower.valid_order ~nblocks:(Array.length r.Ir.blocks) order
              && order.(0) = 0
              && not (Lower.is_identity_order order))
        p.Ir.routines)

let prop_hottest_falls_through =
  QCheck.Test.make ~count:50
    ~name:"the hottest path's trace is the fall-through prefix"
    QCheck.(small_int)
    (fun seed ->
      let p = Gen.program ~seed in
      let vs = views p in
      List.for_all
        (fun (r : Ir.routine) ->
          let paths = routine_paths p r.Ir.name in
          let view = vs r.Ir.name in
          match (Layout.order_for ~view paths, hottest_entry paths) with
          | None, _ | _, None -> true
          | Some order, Some (path, _) ->
              let expected = dedup (0 :: Layout.trace_blocks view path) in
              List.length expected <= Array.length order
              && List.for_all2
                   (fun a b -> a = b)
                   expected
                   (Array.to_list
                      (Array.sub order 0 (List.length expected))))
        p.Ir.routines)

let prop_random_program_semantics =
  QCheck.Test.make ~count:40
    ~name:"random programs: layout on = layout off, byte-identical"
    QCheck.(small_int)
    (fun seed ->
      let p = Gen.program ~seed in
      check_layout_invariant (Printf.sprintf "gen(seed=%d)" seed) p
        (layout_of p);
      true)

(* Any valid permutation — not just the path-guided one — must leave
   outcomes untouched; and invalid orders (entry displaced, out of
   range, truncated) must be ignored, not crash or corrupt. *)
let arbitrary_permutation_case () =
  let p = (Spec.find "crafty").Spec.build ~scale:1 in
  let rng = Random.State.make [| 7 |] in
  let shuffled (r : Ir.routine) =
    let n = Array.length r.Ir.blocks in
    let order = Array.init n (fun i -> i) in
    for i = n - 1 downto 2 do
      let j = 1 + Random.State.int rng i in
      let t = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- t
    done;
    order
  in
  let table : Layout.t = Hashtbl.create 17 in
  List.iter
    (fun (r : Ir.routine) ->
      if Array.length r.Ir.blocks > 2 then
        Hashtbl.replace table r.Ir.name (shuffled r))
    p.Ir.routines;
  check_layout_invariant "crafty/shuffled" p table;
  let bogus : Layout.t = Hashtbl.create 17 in
  List.iter
    (fun (r : Ir.routine) ->
      let n = Array.length r.Ir.blocks in
      let order =
        match Hashtbl.hash r.Ir.name mod 3 with
        | 0 -> Array.init n (fun i -> n - 1 - i) (* entry displaced *)
        | 1 -> Array.make n 0 (* not a permutation *)
        | _ -> [| 0; n + 41 |] (* out of range and truncated *)
      in
      Hashtbl.replace bogus r.Ir.name order)
    p.Ir.routines;
  check_layout_invariant "crafty/bogus" p bogus

(* The proxy is internally consistent on every workload: transfers bound
   both splits, and the path-guided layout changes only the split, never
   the total transfer mass (layout cannot create or destroy edges). *)
let proxy_sanity_case () =
  List.iter
    (fun (bench : Spec.bench) ->
      let p = bench.Spec.build ~scale:1 in
      let o = Interp.run p in
      let ep = Option.get o.Interp.edge_profile in
      let base = Layout.program_proxy p ~ep in
      let laid = Layout.program_proxy ~layout:(layout_of p) p ~ep in
      let ok (x : Layout.proxy) =
        x.Layout.transfers >= 0
        && x.Layout.taken >= 0
        && x.Layout.local >= 0
        && x.Layout.taken <= x.Layout.transfers
        && x.Layout.local <= x.Layout.transfers
      in
      Alcotest.(check bool) (bench.Spec.bench_name ^ " base sane") true (ok base);
      Alcotest.(check bool) (bench.Spec.bench_name ^ " laid sane") true (ok laid);
      Alcotest.(check int)
        (bench.Spec.bench_name ^ " transfer mass preserved")
        base.Layout.transfers laid.Layout.transfers)
    Spec.all

let suite =
  List.map workload_case Spec.all
  @ [
      Alcotest.test_case "arbitrary and invalid permutations" `Quick
        arbitrary_permutation_case;
      Alcotest.test_case "proxy sanity" `Quick proxy_sanity_case;
      QCheck_alcotest.to_alcotest prop_valid_permutation;
      QCheck_alcotest.to_alcotest prop_hottest_falls_through;
      QCheck_alcotest.to_alcotest prop_random_program_semantics;
    ]
