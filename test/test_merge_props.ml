(* Algebraic properties of Profile_io.Raw.merge, the shard combiner:
   commutativity, associativity (on shards that agree on their CFGs),
   identity, conservation of count mass, and never-raise / never-inflate
   under fault injection.

   Shards with honest provenance: the same program run with different
   fuel budgets yields same-CFG dumps with different counts (a partial
   run is a valid profile); different Gen seeds yield different programs
   whose routine names can collide, exercising the stale-salvage path. *)

module Interp = Ppp_interp.Interp
module Profile_io = Ppp_profile.Profile_io
module Raw = Ppp_profile.Profile_io.Raw
module Faults = Ppp_resilience.Faults

let raw_of_outcome p (o : Interp.outcome) =
  Raw.of_program ?edges:o.Interp.edge_profile ?paths:o.Interp.path_profile p

(* A shard of program [seed]: the profile of a run capped at [fuel]
   instructions (None = run to completion). *)
let shard ?fuel seed =
  let p = Ppp_workloads.Gen.program ~seed in
  let o =
    match fuel with
    | None -> Interp.run p
    | Some fuel -> Interp.run ~config:{ Interp.default_config with fuel } p
  in
  raw_of_outcome p o

let canon = Raw.to_string
let conserved t = Raw.mass t + Raw.lost t

(* Fuel levels small enough to differ per shard but large enough that
   something executes. *)
let fuel_of n = 50 + (n mod 977)

let same_program_shards seed =
  ( shard ~fuel:(fuel_of seed) seed,
    shard ~fuel:(fuel_of (seed + 1)) seed,
    shard seed )

let prop_commutative_same_cfg =
  QCheck.Test.make ~name:"merge is commutative (same-CFG shards)" ~count:25
    QCheck.(small_int)
    (fun seed ->
      let a, b, _ = same_program_shards seed in
      canon (Raw.merge [ a; b ]) = canon (Raw.merge [ b; a ]))

let prop_commutative_cross_program =
  QCheck.Test.make
    ~name:"merge is commutative (shards of different programs)" ~count:25
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = shard s1 and b = shard (s1 + s2 + 1) in
      canon (Raw.merge [ a; b ]) = canon (Raw.merge [ b; a ]))

let prop_associative =
  QCheck.Test.make ~name:"merge is associative (same-CFG shards)" ~count:25
    QCheck.(small_int)
    (fun seed ->
      let a, b, c = same_program_shards seed in
      let left = canon (Raw.merge [ Raw.merge [ a; b ]; c ]) in
      let right = canon (Raw.merge [ a; Raw.merge [ b; c ] ]) in
      let flat = canon (Raw.merge [ a; b; c ]) in
      left = flat && right = flat)

let prop_identity =
  QCheck.Test.make ~name:"merge with empty is the identity" ~count:25
    QCheck.(small_int)
    (fun seed ->
      let a = shard seed in
      canon (Raw.merge [ a; Raw.empty () ]) = canon a
      && canon (Raw.merge [ Raw.empty (); a ]) = canon a
      && canon (Raw.merge [ a ]) = canon a
      && canon (Raw.merge []) = canon (Raw.empty ()))

(* Every unit of count mass an input holds (or had already lost) is in
   the merge's tables or its lost tally — nothing vanishes, nothing is
   invented. Cross-program inputs make some mass flow through stale
   salvage into [lost]. *)
let prop_mass_conserved =
  QCheck.Test.make ~name:"merge conserves count mass (mass + lost)"
    ~count:25
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a, b, c = same_program_shards s1 in
      let d = shard (s1 + s2 + 1) in
      let inputs = [ a; b; c; d ] in
      let m = Raw.merge inputs in
      conserved m = List.fold_left (fun acc t -> acc + conserved t) 0 inputs)

(* Fault-injected shards: parsing and merging never raise, and the merge
   never holds more mass than its (post-fault, as-parsed) inputs. *)
let prop_faulted_merge_safe =
  QCheck.Test.make ~name:"fault-injected merges never raise nor inflate"
    ~count:30
    QCheck.(pair small_int small_int)
    (fun (seed, fseed) ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o = Interp.run p in
      let pristine = canon (raw_of_outcome p o) in
      let r = Faults.rng ~seed:fseed in
      List.for_all
        (fun fault ->
          let mutated = Faults.apply r fault pristine in
          let a = Raw.parse mutated in
          let b = Raw.parse pristine in
          let m = Raw.merge [ a; b ] in
          (* never inflate: the merge's live mass is bounded by its
             inputs' live mass... *)
          Raw.mass m <= Raw.mass a + Raw.mass b
          (* ...and the conservation ledger still balances. *)
          && conserved m = conserved a + conserved b)
        Faults.all)

(* {2 Decayed (fleet) merge} *)

(* A decay factor derived from an int generator: spread over (0, 1). *)
let decay_of k = 0.05 +. (float_of_int (abs k mod 19) /. 20.)

let prop_decay_one_is_merge =
  QCheck.Test.make ~name:"merge_decayed at decay=1.0 is merge, byte for byte"
    ~count:25
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a, b, c = same_program_shards s1 in
      let d = shard (s1 + s2 + 1) in
      let inputs = [ a; b; c; d ] in
      canon (Raw.merge_decayed ~decay:1.0 inputs) = canon (Raw.merge inputs))

let prop_decay_never_inflates =
  QCheck.Test.make
    ~name:"merge_decayed never holds more live mass than the plain merge"
    ~count:25
    QCheck.(pair small_int small_int)
    (fun (s1, k) ->
      let a, b, c = same_program_shards s1 in
      let inputs = [ a; b; c ] in
      let decay = decay_of k in
      Raw.mass (Raw.merge_decayed ~decay inputs)
      <= Raw.mass (Raw.merge inputs))

(* Whatever the decay pre-scaling drops from the tables lands in the
   lost ledger: mass + lost is conserved exactly, stale salvage and
   cross-program collisions included. *)
let prop_decay_conserves =
  QCheck.Test.make ~name:"merge_decayed conserves mass + lost" ~count:25
    QCheck.(triple small_int small_int small_int)
    (fun (s1, s2, k) ->
      let a, b, c = same_program_shards s1 in
      let d = shard (s1 + s2 + 1) in
      let inputs = [ a; b; c; d ] in
      let m = Raw.merge_decayed ~decay:(decay_of k) inputs in
      conserved m = List.fold_left (fun acc t -> acc + conserved t) 0 inputs)

let prop_faulted_decay_safe =
  QCheck.Test.make
    ~name:"fault-injected decayed merges never raise nor lose the ledger"
    ~count:30
    QCheck.(triple small_int small_int small_int)
    (fun (seed, fseed, k) ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o = Interp.run p in
      let pristine = canon (raw_of_outcome p o) in
      let r = Faults.rng ~seed:fseed in
      let decay = decay_of k in
      List.for_all
        (fun fault ->
          let a = Raw.parse (Faults.apply r fault pristine) in
          let b = Raw.parse pristine in
          let m = Raw.merge_decayed ~decay [ a; b ] in
          Raw.mass m <= Raw.mass a + Raw.mass b
          && conserved m = conserved a + conserved b)
        Faults.all)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_commutative_same_cfg;
      prop_commutative_cross_program;
      prop_associative;
      prop_identity;
      prop_mass_conserved;
      prop_faulted_merge_safe;
      prop_decay_one_is_merge;
      prop_decay_never_inflates;
      prop_decay_conserves;
      prop_faulted_decay_safe;
    ]
