(* Tiered in-VM re-optimization, tested as a transparency contract plus a
   protocol contract. Transparency: a tiered run — routines swapping from
   their instrumented variant to an optimized re-lowering mid-run, at
   frame entries and loop back-edge OSR points — must be byte-identical
   in program outcome to the untiered run, on every workload, method and
   fuel budget; what tiering IS allowed to change is instr_cost and the
   frozen frequency tables. Protocol: the two engines must agree on the
   FULL digest (tables, costs, and the tier decision log) under any
   tier/sampling combination, which pins down the canonical resolution
   order (trip, tick, tier-override) and the frames-keep-their-variant
   rule; and the session must be point-invalidated for exactly the
   swapped routines. *)

module Graph = Ppp_cfg.Graph
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module Interp = Ppp_interp.Interp
module Instr_rt = Ppp_interp.Instr_rt
module Sampling = Ppp_interp.Sampling
module Tier = Ppp_interp.Tier
module Obs = Ppp_obs.Metrics
module Spec = Ppp_workloads.Spec
module Gen = Ppp_workloads.Gen
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument
module Session = Ppp_session.Session
module Pipeline = Ppp_harness.Pipeline

(* The program-outcome digest: everything the program itself observes or
   produces. Instrumentation cost and table state are excluded — they
   are the only things a tier swap is allowed to change. *)
let outcome_digest (p : Ir.program) (o : Interp.outcome) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.bprintf b fmt in
  pf "ret=%s\n"
    (match o.Interp.return_value with
    | None -> "-"
    | Some v -> string_of_int v);
  pf "out=%s\n" (String.concat "," (List.map string_of_int o.Interp.output));
  pf "base=%d dyn_instrs=%d dyn_paths=%d\n" o.Interp.base_cost
    o.Interp.dyn_instrs o.Interp.dyn_paths;
  pf "term=%s\n"
    (match o.Interp.termination with
    | Interp.Finished -> "finished"
    | Interp.Out_of_fuel { stack_depth } ->
        Printf.sprintf "out_of_fuel(depth=%d)" stack_depth);
  let routines =
    List.sort compare
      (List.map (fun (r : Ir.routine) -> r.Ir.name) p.Ir.routines)
  in
  (match o.Interp.edge_profile with
  | None -> pf "edges=none\n"
  | Some ep ->
      List.iter
        (fun name ->
          let view = Cfg_view.of_routine (Ir.routine p name) in
          let n = Graph.num_edges (Cfg_view.graph view) in
          pf "edges %s:" name;
          for e = 0 to n - 1 do
            pf " %d" (Edge_profile.routine_freq ep name e)
          done;
          pf "\n")
        routines);
  (match o.Interp.path_profile with
  | None -> pf "paths=none\n"
  | Some pp ->
      List.iter
        (fun name ->
          let t = Path_profile.routine pp name in
          let entries =
            Path_profile.fold t ~init:[] ~f:(fun acc path n ->
                (path, n) :: acc)
            |> List.sort compare
          in
          pf "paths %s:" name;
          List.iter
            (fun (path, n) ->
              pf " [%s]=%d"
                (String.concat "-" (List.map string_of_int path))
                n)
            entries;
          pf "\n")
        routines);
  Buffer.contents b

(* The full digest adds what tiering IS allowed to change, plus the
   decision log itself; used for the cross-engine agreement check, which
   must hold bit for bit even for the frozen tables. *)
let full_digest p (o : Interp.outcome) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.bprintf b fmt in
  pf "%s" (outcome_digest p o);
  pf "instr=%d\n" o.Interp.instr_cost;
  (match o.Interp.instr_state with
  | None -> pf "tables=none\n"
  | Some state ->
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) state [] in
      List.iter
        (fun name ->
          let t = Hashtbl.find state name in
          let entries = ref [] in
          Instr_rt.Table.iter_nonzero t (fun k n ->
              entries := (k, n) :: !entries);
          pf "table %s:" name;
          List.iter
            (fun (k, n) -> pf " %d=%d" k n)
            (List.sort compare !entries);
          pf " cold=%d lost=%d total=%d\n" (Instr_rt.Table.cold t)
            (Instr_rt.Table.lost t)
            (Instr_rt.Table.dynamic_total t))
        (List.sort compare names));
  List.iter
    (fun (d : Tier.decision) ->
      pf "tier %s trips=%d gen=%d reordered=%b\n" d.Tier.d_routine
        d.Tier.d_trips d.Tier.d_gen d.Tier.d_reordered)
    o.Interp.tier_decisions;
  Buffer.contents b

let prior_edges p =
  match
    (Interp.run ~engine:Interp.Reference ~config:Interp.default_config p)
      .Interp.edge_profile
  with
  | Some ep -> ep
  | None -> Alcotest.fail "no edge profile from the prior run"

let methods p =
  let ep = prior_edges p in
  [
    ("none", None);
    ("pp", Some (Instrument.instrument p ep Config.pp).Instrument.rt);
    ("tpp", Some (Instrument.instrument p ep Config.tpp).Instrument.rt);
    ("ppp", Some (Instrument.instrument p ep Config.ppp).Instrument.rt);
  ]

(* A deliberately adversarial planner: entry first, every other block in
   reverse — a genuine re-lowering for any routine with >= 3 blocks, so
   OSR crossings have to map offsets across structurally different code
   arrays. Deterministic and engine-blind (it sees only what [Tier.fire]
   passes). *)
let reversal_planner (p : Ir.program) : Tier.planner =
  let nblocks = Hashtbl.create 17 in
  List.iter
    (fun (r : Ir.routine) ->
      Hashtbl.replace nblocks r.Ir.name (Array.length r.Ir.blocks))
    p.Ir.routines;
 fun ~routine ~counters:_ ->
  match Hashtbl.find_opt nblocks routine with
  | Some n when n >= 3 ->
      Some (Array.init n (fun i -> if i = 0 then 0 else n - i))
  | _ -> None

let tier_specs p =
  [
    ("strip", Tier.spec ~threshold:2 ());
    ("reorder", Tier.spec ~threshold:2 ~plan:(reversal_planner p) ());
    ("budget1", Tier.spec ~threshold:1 ~budget:1 ~plan:(reversal_planner p) ());
  ]

(* The transparency + agreement check for one workload: for every
   method, fuel budget and tier spec, the tiered run's program outcome
   equals the untiered run's (per engine), and the two engines agree on
   the full digest, decision log included. *)
let check_workload name p =
  List.iter
    (fun (mname, instrumentation) ->
      List.iter
        (fun (fname, fuel) ->
          let base_config =
            { Interp.default_config with Interp.instrumentation; fuel }
          in
          let base_vm =
            outcome_digest p (Interp.run ~engine:Interp.Vm ~config:base_config p)
          in
          List.iter
            (fun (sname, spec) ->
              let config =
                { base_config with Interp.tier = Some spec }
              in
              let vm = Interp.run ~engine:Interp.Vm ~config p in
              let r = Interp.run ~engine:Interp.Reference ~config p in
              Alcotest.(check string)
                (Printf.sprintf "%s/%s/%s/%s transparent" name mname fname
                   sname)
                base_vm (outcome_digest p vm);
              Alcotest.(check string)
                (Printf.sprintf "%s/%s/%s/%s engines agree" name mname fname
                   sname)
                (full_digest p r) (full_digest p vm))
            (tier_specs p))
        [ ("full", Interp.default_config.Interp.fuel); ("starved", 5_000) ])
    (methods p)

let workload_case (bench : Spec.bench) =
  Alcotest.test_case bench.Spec.bench_name `Quick (fun () ->
      check_workload bench.Spec.bench_name (bench.Spec.build ~scale:1))

(* Walk fuel through a band that crosses many swap points: every
   exhaustion boundary must land identically with and without tiering,
   and across engines — the OSR retarget may never lose or duplicate a
   charge. *)
let fuel_walk () =
  let p = (Spec.find "vpr").Spec.build ~scale:1 in
  let instrumentation =
    Some (Instrument.instrument p (prior_edges p) Config.ppp).Instrument.rt
  in
  let spec = Tier.spec ~threshold:2 ~plan:(reversal_planner p) () in
  for fuel = 400 to 460 do
    let base_config =
      { Interp.default_config with Interp.instrumentation; fuel }
    in
    let config = { base_config with Interp.tier = Some spec } in
    let vm = Interp.run ~engine:Interp.Vm ~config p in
    Alcotest.(check string)
      (Printf.sprintf "fuel=%d transparent" fuel)
      (outcome_digest p (Interp.run ~engine:Interp.Vm ~config:base_config p))
      (outcome_digest p vm);
    Alcotest.(check string)
      (Printf.sprintf "fuel=%d engines agree" fuel)
      (full_digest p (Interp.run ~engine:Interp.Reference ~config p))
      (full_digest p vm)
  done

(* Sampling composes with tiering: the burst schedule keeps its
   chronology (ticks are consumed at every decision point whether or not
   the tier already fired), swaps win the resolution, and no frame ever
   executes a stale variant — all observable as program-outcome
   transparency plus bitwise cross-engine agreement on the sampled
   tables. *)
let sampling_composition () =
  List.iter
    (fun bench_name ->
      let p = (Spec.find bench_name).Spec.build ~scale:1 in
      let instrumentation =
        Some (Instrument.instrument p (prior_edges p) Config.ppp).Instrument.rt
      in
      List.iter
        (fun sampling ->
          List.iter
            (fun (sname, tier) ->
              List.iter
                (fun fuel ->
                  let base_config =
                    {
                      Interp.default_config with
                      Interp.instrumentation;
                      fuel;
                      sampling;
                    }
                  in
                  let config = { base_config with Interp.tier = Some tier } in
                  let vm = Interp.run ~engine:Interp.Vm ~config p in
                  Alcotest.(check string)
                    (Printf.sprintf "%s/%s/fuel=%d transparent" bench_name
                       sname fuel)
                    (outcome_digest p
                       (Interp.run ~engine:Interp.Vm ~config:base_config p))
                    (outcome_digest p vm);
                  Alcotest.(check string)
                    (Printf.sprintf "%s/%s/fuel=%d engines agree" bench_name
                       sname fuel)
                    (full_digest p
                       (Interp.run ~engine:Interp.Reference ~config p))
                    (full_digest p vm))
                [ Interp.default_config.Interp.fuel; 5_000 ])
            (tier_specs p))
        [
          None;
          Some (Sampling.spec ~denom:4 ~burst:2 ~seed:11 ());
          Some (Sampling.spec ~denom:16 ~seed:7 ());
        ])
    [ "vpr"; "crafty" ]

(* QCheck: over random programs and random tier parameters, swaps at
   arbitrary call boundaries and back edges preserve the program
   outcome, and the engines agree on the full digest — i.e. frames in
   flight keep their entry-time variant and the controller's log is a
   pure function of the run. *)
let qcheck_swap_protocol =
  QCheck.Test.make ~count:60 ~name:"tier swap protocol on random programs"
    QCheck.(triple small_nat small_nat bool)
    (fun (seed, t, reorder) ->
      let p = Gen.program ~seed in
      let threshold = 1 + (t mod 5) in
      let instrumentation =
        Some (Instrument.instrument p (prior_edges p) Config.ppp).Instrument.rt
      in
      let spec =
        if reorder then Tier.spec ~threshold ~plan:(reversal_planner p) ()
        else Tier.spec ~threshold ()
      in
      let base_config =
        { Interp.default_config with Interp.instrumentation; fuel = 50_000 }
      in
      let config = { base_config with Interp.tier = Some spec } in
      let vm = Interp.run ~engine:Interp.Vm ~config p in
      let transparent =
        outcome_digest p (Interp.run ~engine:Interp.Vm ~config:base_config p)
        = outcome_digest p vm
      in
      let agree =
        full_digest p (Interp.run ~engine:Interp.Reference ~config p)
        = full_digest p vm
      in
      if not transparent then
        QCheck.Test.fail_report "tiered run changed the program outcome";
      if not agree then
        QCheck.Test.fail_report "engines disagree under tiering";
      true)

(* The controller's own arithmetic: one fire per routine at the exact
   threshold crossing, budget spent per swap, and a denied crossing
   counted once — never per subsequent trip. *)
let controller_accounting () =
  let spec = Tier.spec ~threshold:3 ~budget:1 () in
  let t = Tier.start spec ~nroutines:2 in
  Alcotest.(check bool) "below threshold" false (Tier.trip t 0);
  Alcotest.(check bool) "still below" false (Tier.trip t 0);
  Alcotest.(check bool) "crossing fires" true (Tier.trip t 0);
  ignore (Tier.fire t ~idx:0 ~name:"a" ~counters:[]);
  Alcotest.(check bool) "tiered" true (Tier.is_tiered t 0);
  Alcotest.(check bool) "no refire" false (Tier.trip t 0);
  for _ = 1 to 2 do
    Alcotest.(check bool) "b below" false (Tier.trip t 1)
  done;
  Alcotest.(check bool) "b denied: budget spent" false (Tier.trip t 1);
  Alcotest.(check bool) "denial is once, not per trip" false (Tier.trip t 1);
  Alcotest.(check int) "one decision" 1 (List.length (Tier.decisions t));
  Alcotest.(check int) "one swap" 1 (Tier.swaps t);
  (match Tier.decisions t with
  | [ d ] ->
      Alcotest.(check string) "routine" "a" d.Tier.d_routine;
      Alcotest.(check int) "trips at fire" 3 d.Tier.d_trips;
      Alcotest.(check bool) "no planner, no reorder" false d.Tier.d_reordered
  | _ -> Alcotest.fail "expected exactly one decision");
  (match Tier.spec ~threshold:0 () with
  | _ -> Alcotest.fail "threshold 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Tier.spec ~budget:(-1) () with
  | _ -> Alcotest.fail "negative budget must be rejected"
  | exception Invalid_argument _ -> ()

(* The pipeline wrapper: one tiered run is outcome-identical to the
   two-pass instrumented run, retires instrumentation (instr_cost can
   only shrink), logs decisions for the hot routines, and point-
   invalidates the session for exactly the swapped set. *)
let tiered_run_pipeline () =
  let p = (Spec.find "vpr").Spec.build ~scale:1 in
  let prepared = Pipeline.prepare ~name:"vpr" p in
  let ev = Pipeline.evaluate prepared Config.ppp in
  let before = (Session.stats prepared.Pipeline.session).Session.invalidations in
  let t = Pipeline.tiered_run ~threshold:2 prepared Config.ppp in
  let after = (Session.stats prepared.Pipeline.session).Session.invalidations in
  Alcotest.(check bool) "hot workload tiers up" true
    (t.Pipeline.t_decisions <> []);
  Alcotest.(check (list string)) "invalidated exactly the swapped routines"
    (List.map (fun (d : Tier.decision) -> d.Tier.d_routine)
       t.Pipeline.t_decisions)
    t.Pipeline.t_invalidated;
  Alcotest.(check int) "one session invalidation per swapped routine"
    (List.length t.Pipeline.t_invalidated)
    (after - before);
  (* Same instrumented program, so the tiered single run must agree with
     the two-pass flow on the program outcome... *)
  let untiered =
    Interp.run
      ~config:
        {
          Interp.default_config with
          Interp.instrumentation =
            Some t.Pipeline.t_instrumented.Instrument.rt;
        }
      prepared.Pipeline.optimized
  in
  Alcotest.(check string) "outcome identical to the two-pass run"
    (outcome_digest prepared.Pipeline.optimized untiered)
    (outcome_digest prepared.Pipeline.optimized t.Pipeline.t_outcome);
  (* ... while spending strictly less on instrumentation. *)
  Alcotest.(check bool) "instrumentation cost shrinks" true
    (t.Pipeline.t_outcome.Interp.instr_cost < untiered.Interp.instr_cost);
  ignore ev

(* The tier.* metric family flows through the flush like every other
   engine counter, from both engines identically. *)
let tier_metrics () =
  let p = (Spec.find "vpr").Spec.build ~scale:1 in
  let instrumentation =
    Some (Instrument.instrument p (prior_edges p) Config.ppp).Instrument.rt
  in
  let config =
    {
      Interp.default_config with
      Interp.instrumentation;
      tier = Some (Tier.spec ~threshold:2 ~plan:(reversal_planner p) ());
    }
  in
  let family engine =
    Obs.set_enabled true;
    Obs.reset ();
    ignore (Interp.run ~engine ~config p);
    let s = Obs.snapshot () in
    Obs.set_enabled false;
    List.map
      (fun k -> (k, Option.value ~default:0 (Obs.counter_value s ("tier." ^ k))))
      [ "trips"; "swaps"; "reorders"; "denied_budget"; "entry_swaps"; "osr_swaps" ]
  in
  let vm = family Interp.Vm in
  Alcotest.(check bool) "trips counted" true (List.assoc "trips" vm > 0);
  Alcotest.(check bool) "swaps counted" true (List.assoc "swaps" vm > 0);
  Alcotest.(check (list (pair string int))) "families identical across engines"
    vm
    (family Interp.Reference)

let suite =
  List.map workload_case Spec.all
  @ [
      Alcotest.test_case "fuel walk across swap points" `Quick fuel_walk;
      Alcotest.test_case "sampling composes with tiering" `Quick
        sampling_composition;
      QCheck_alcotest.to_alcotest qcheck_swap_protocol;
      Alcotest.test_case "controller accounting" `Quick controller_accounting;
      Alcotest.test_case "pipeline tiered_run + session invalidation" `Quick
        tiered_run_pipeline;
      Alcotest.test_case "tier.* metrics" `Quick tier_metrics;
    ]
