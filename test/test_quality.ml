(* The observability subsystem: profile-quality analytics (Ppp_quality),
   the optimizer decision log, live VM telemetry, the quality report, and
   the gate's missing-metric / floor checks.

   The quality scores are exercised both on synthetic weighted profiles
   (where the expected value is computable by hand) and on real dumps of
   generated programs, including fault-perturbed and cross-version
   (stale-matched) ones. Telemetry is tested differentially: a run with
   a snapshot ring attached must be byte-identical on every observable
   to a run without one. *)

module Quality = Ppp_quality.Quality
module QR = Ppp_harness.Quality_report
module Gate = Ppp_harness.Gate
module H = Ppp_harness.Pipeline
module Report = Ppp_harness.Report
module Decision = Ppp_opt.Decision
module Interp = Ppp_interp.Interp
module Telemetry = Ppp_interp.Telemetry
module Metrics = Ppp_obs.Metrics
module Trace = Ppp_obs.Trace
module Jsonx = Ppp_obs.Jsonx
module Faults = Ppp_resilience.Faults
module Raw = Ppp_profile.Profile_io.Raw
module Gen = Ppp_workloads.Gen
module Metric = Ppp_profile.Metric

let metric = Metric.Branch_flow

let dump_of_seed ?fuel seed =
  let p = Gen.program ~seed in
  let o =
    match fuel with
    | None -> Interp.run p
    | Some fuel -> Interp.run ~config:{ Interp.default_config with fuel } p
  in
  Raw.of_program ?edges:o.Interp.edge_profile ?paths:o.Interp.path_profile p

let quality_of_seed ?fuel seed = Quality.of_dump ~metric (dump_of_seed ?fuel seed)
let approx ?(eps = 1e-6) a b = Float.abs (a -. b) < eps

(* {2 Overlap properties} *)

let prop_overlap_reflexive =
  QCheck.Test.make ~name:"overlap of a profile with itself is 100" ~count:20
    QCheck.small_int (fun seed ->
      let q = quality_of_seed seed in
      approx ~eps:1e-6 100.0 (Quality.overlap q q))

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:20
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = quality_of_seed s1 and b = quality_of_seed (s1 + s2 + 1) in
      approx (Quality.overlap a b) (Quality.overlap b a))

let prop_overlap_bounded =
  QCheck.Test.make ~name:"overlap lies in [0, 100]" ~count:20
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = quality_of_seed s1 and b = quality_of_seed s2 in
      let v = Quality.overlap a b in
      v >= 0.0 && v <= 100.0 +. 1e-9)

(* Degradation is monotone: dropping ever more of the reference's keys
   from the candidate can only lower the overlap. Synthetic weights make
   the expected values exact: with n equal-weight keys and i of them
   dropped, the overlap is 100 * (n - i) / n. *)
let test_overlap_monotone_degradation () =
  let n = 10 in
  let key i = (Printf.sprintf "r%d" i, [ i; i + 1 ]) in
  let full = List.init n (fun i -> (key i, 100)) in
  let reference = Quality.of_weighted full in
  let prev = ref infinity in
  for dropped = 0 to n do
    let cand = Quality.of_weighted (List.filteri (fun i _ -> i >= dropped) full) in
    let v = Quality.overlap reference cand in
    let expected =
      if dropped = n then 0.0 else 100.0 *. float_of_int (n - dropped) /. float_of_int n
    in
    Alcotest.(check bool)
      (Printf.sprintf "overlap with %d keys dropped ~ %g" dropped expected)
      true (approx v expected);
    Alcotest.(check bool) "overlap non-increasing" true (v <= !prev +. 1e-9);
    prev := v
  done

let test_overlap_empty () =
  let empty = Quality.of_weighted [] in
  let some = Quality.of_weighted [ (("r", [ 0 ]), 5) ] in
  Alcotest.(check bool) "two empties agree" true
    (approx 100.0 (Quality.overlap empty empty));
  Alcotest.(check bool) "empty vs non-empty is 0" true
    (approx 0.0 (Quality.overlap empty some));
  Alcotest.(check bool) "non-empty vs empty is 0" true
    (approx 0.0 (Quality.overlap some empty))

(* A fault-perturbed dump never scores above the pristine one against
   itself, and scoring it never raises (the loader's salvage guarantees
   carry through to the analytics). *)
let prop_overlap_faulted =
  QCheck.Test.make ~name:"faulted dumps score in range, never raise" ~count:15
    QCheck.(pair small_int small_int)
    (fun (seed, fseed) ->
      let pristine_text = Raw.to_string (dump_of_seed seed) in
      let reference = Quality.of_dump ~metric (Raw.parse pristine_text) in
      let r = Faults.rng ~seed:fseed in
      List.for_all
        (fun fault ->
          let mutated = Faults.apply r fault pristine_text in
          let cand = Quality.of_dump ~metric (Raw.parse mutated) in
          let v = Quality.overlap reference cand in
          v >= 0.0 && v <= 100.0 +. 1e-9)
        Faults.all)

(* {2 Divergence and composite} *)

let prop_divergence_zero_on_self =
  QCheck.Test.make ~name:"total divergence of a profile with itself is 0"
    ~count:20 QCheck.small_int (fun seed ->
      let q = quality_of_seed seed in
      approx 0.0 (Quality.total_divergence q q))

let prop_divergence_sums =
  QCheck.Test.make
    ~name:"per-routine divergence sums to the total, each term in [0,1]"
    ~count:20
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = quality_of_seed s1 and b = quality_of_seed (s1 + s2 + 1) in
      let per = Quality.divergence a b in
      let total = Quality.total_divergence a b in
      approx ~eps:1e-6 total (List.fold_left (fun acc (_, d) -> acc +. d) 0.0 per)
      && List.for_all (fun (_, d) -> d >= -1e-12 && d <= 1.0 +. 1e-9) per
      && total >= 0.0
      && total <= 1.0 +. 1e-9)

let test_composite () =
  let q = quality_of_seed 3 in
  Alcotest.(check bool) "identical profiles score 1.0" true
    (approx 1.0 (Quality.composite ~reference:q ~candidate:q ()));
  Alcotest.(check bool) "confidence scales linearly" true
    (approx 0.5 (Quality.composite ~confidence:0.5 ~reference:q ~candidate:q ()))

(* {2 Hot-path report} *)

let test_hot_report_self () =
  let q = quality_of_seed 5 in
  let r = Quality.hot_report ~reference:q ~candidate:q () in
  Alcotest.(check bool) "precision 1.0" true (approx 1.0 r.Quality.precision);
  Alcotest.(check bool) "recall 1.0" true (approx 1.0 r.Quality.recall);
  Alcotest.(check bool) "flow coverage 1.0" true
    (approx 1.0 r.Quality.flow_coverage);
  Alcotest.(check int) "hot sets coincide" r.Quality.hot_ref r.Quality.hot_cand;
  Alcotest.(check int) "all matched" r.Quality.hot_ref r.Quality.matched

let test_hot_report_empty_candidate () =
  let q = quality_of_seed 5 in
  let empty = Quality.of_weighted [] in
  let r = Quality.hot_report ~reference:q ~candidate:empty () in
  Alcotest.(check bool) "reference has hot paths" true (r.Quality.hot_ref > 0);
  Alcotest.(check int) "no candidate hot paths" 0 r.Quality.hot_cand;
  Alcotest.(check bool) "vacuous precision" true (approx 1.0 r.Quality.precision);
  Alcotest.(check bool) "zero recall" true (approx 0.0 r.Quality.recall);
  Alcotest.(check bool) "zero flow coverage" true
    (approx 0.0 r.Quality.flow_coverage)

let prop_hot_report_sane =
  QCheck.Test.make ~name:"hot report fields are internally consistent"
    ~count:20
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = quality_of_seed s1 and b = quality_of_seed s2 in
      let r = Quality.hot_report ~reference:a ~candidate:b () in
      r.Quality.matched <= r.Quality.hot_ref
      && r.Quality.matched <= r.Quality.hot_cand
      && r.Quality.precision >= 0.0
      && r.Quality.precision <= 1.0 +. 1e-9
      && r.Quality.recall >= 0.0
      && r.Quality.recall <= 1.0 +. 1e-9
      && r.Quality.flow_coverage >= 0.0
      && r.Quality.flow_coverage <= 1.0 +. 1e-9)

(* {2 Cross-version remapping} *)

(* Two dumps of the "same program, next build": a workload at two scales
   has renumbered-but-matchable CFGs (the smoke-tested stale path). *)
let cross_version_dumps () =
  let dump scale =
    let b = Ppp_workloads.Spec.find "bzip2" in
    let p = b.Ppp_workloads.Spec.build ~scale in
    let o = Interp.run p in
    Raw.of_program ?edges:o.Interp.edge_profile ?paths:o.Interp.path_profile p
  in
  (dump 1, dump 2)

let test_remap_cross_version () =
  let raw_a, raw_b = cross_version_dumps () in
  let qa = Quality.of_dump ~metric raw_a in
  let qb = Quality.of_dump ~metric raw_b in
  let remapped, stats =
    Quality.remap ~descs:(Quality.descs_of_dump raw_b)
      ~target:(Quality.descs_of_dump raw_a) qb
  in
  Alcotest.(check bool) "some routines matched" true
    (stats.Quality.routines_matched > 0);
  Alcotest.(check int) "mass conserved"
    (Quality.total qb)
    (stats.Quality.mass_kept + stats.Quality.mass_dropped);
  let cross = Quality.overlap qa remapped in
  let same = Quality.overlap qa qa in
  Alcotest.(check bool) "cross-version scores below same-version" true
    (cross <= same +. 1e-9);
  Alcotest.(check bool) "stale match salvages real agreement" true (cross > 0.0)

let test_remap_identity () =
  let raw = dump_of_seed 11 in
  let q = Quality.of_dump ~metric raw in
  let descs = Quality.descs_of_dump raw in
  let remapped, stats = Quality.remap ~descs ~target:descs q in
  Alcotest.(check bool) "identity remap keeps the score at 100" true
    (approx 100.0 (Quality.overlap q remapped));
  Alcotest.(check int) "identity remap drops nothing" 0
    stats.Quality.mass_dropped

(* {2 Decision log} *)

let inline ?(freq = 10) ?(priority = 1.0) caller callee block =
  Decision.Inline { caller; callee; block; freq; priority }

let unroll ?(trips = 4.0) ?(back_freq = 100) routine header factor =
  Decision.Unroll { routine; header; factor; trips; back_freq }

let test_decision_key_ignores_magnitudes () =
  Alcotest.(check string)
    "inline keys ignore freq/priority"
    (Decision.key (inline ~freq:10 ~priority:1.0 "a" "b" 3))
    (Decision.key (inline ~freq:999 ~priority:7.5 "a" "b" 3));
  Alcotest.(check bool)
    "different placements have different keys" true
    (Decision.key (inline "a" "b" 3) <> Decision.key (inline "a" "b" 4));
  Alcotest.(check string)
    "unroll keys ignore trips/back_freq"
    (Decision.key (unroll ~trips:2.0 ~back_freq:5 "r" 1 4))
    (Decision.key (unroll ~trips:90.0 ~back_freq:5000 "r" 1 4))

let test_decision_diff () =
  let d1 = inline "a" "b" 3 in
  let d2 = unroll "r" 1 4 in
  let d3 = inline "a" "c" 7 in
  let first = Decision.diff ~previous:[] ~current:[ d1; d2 ] in
  Alcotest.(check int) "first generation: all added" 2
    (List.length first.Decision.added);
  Alcotest.(check bool) "first generation: vacuous stability" true
    (approx 1.0 (Decision.stability first));
  (* d2 survives (with different magnitudes), d1 is lost, d3 appears. *)
  let d2' = unroll ~trips:8.0 ~back_freq:777 "r" 1 4 in
  let d = Decision.diff ~previous:[ d1; d2 ] ~current:[ d2'; d3 ] in
  Alcotest.(check int) "one added" 1 (List.length d.Decision.added);
  Alcotest.(check int) "one removed" 1 (List.length d.Decision.removed);
  Alcotest.(check int) "one kept" 1 (List.length d.Decision.kept);
  Alcotest.(check bool) "stability = kept / (kept + removed)" true
    (approx 0.5 (Decision.stability d));
  (* The JSON renderings are well-formed. *)
  let roundtrip j = Jsonx.of_string (Jsonx.to_string j) = Jsonx.canonical j in
  Alcotest.(check bool) "decision JSON parses" true
    (List.for_all (fun x -> roundtrip (Jsonx.canonical (Decision.to_json x)))
       [ d1; d2; d3 ]);
  Alcotest.(check bool) "diff JSON parses" true
    (roundtrip (Jsonx.canonical (Decision.diff_json d)))

let test_pipeline_decisions () =
  let b = Ppp_workloads.Spec.find "bzip2" in
  let prep = H.prepare ~name:"bzip2" (b.Ppp_workloads.Spec.build ~scale:1) in
  let ds = H.decisions prep in
  Alcotest.(check bool) "the optimizer logged its decisions" true (ds <> []);
  Alcotest.(check int) "log length matches the pass stats"
    (List.length prep.H.inline_stats.Ppp_opt.Inline.decisions
    + List.length prep.H.unroll_stats.Ppp_opt.Unroll.decisions)
    (List.length ds)

let test_reoptimize_decision_diffs () =
  let b = Ppp_workloads.Spec.find "mcf" in
  let gens =
    H.reoptimize ~iterations:2 ~name:"mcf" (b.Ppp_workloads.Spec.build ~scale:1)
  in
  Alcotest.(check int) "two generations" 2 (List.length gens);
  let g1 = List.nth gens 0 and g2 = List.nth gens 1 in
  Alcotest.(check int) "gen 1 diffs against the empty log"
    (List.length g1.H.decisions)
    (List.length g1.H.decision_diff.Decision.added);
  Alcotest.(check bool) "gen 1 stability vacuously 1.0" true
    (approx 1.0 (Decision.stability g1.H.decision_diff));
  let d2 = g2.H.decision_diff in
  Alcotest.(check int) "gen 2 diff partitions gen 2's log"
    (List.length g2.H.decisions)
    (List.length d2.Decision.added + List.length d2.Decision.kept);
  let s = Decision.stability d2 in
  Alcotest.(check bool) "gen 2 stability in [0,1]" true (s >= 0.0 && s <= 1.0)

(* {2 Gate: missing metrics and quality floors} *)

let bench_doc ~methods name =
  Jsonx.Obj
    [
      ("name", Jsonx.Str name);
      ( "methods",
        Jsonx.Obj
          (List.map
             (fun (m, ov) -> (m, Jsonx.Obj [ ("overhead", Jsonx.Float ov) ]))
             methods) );
    ]

let gate_doc benches =
  Jsonx.Obj
    [ ("schema", Jsonx.Str "ppp-bench/1"); ("benchmarks", Jsonx.Arr benches) ]

let test_gate_missing_metric () =
  let baseline =
    gate_doc [ bench_doc ~methods:[ ("pp", 1.0); ("ppp", 1.0) ] "x" ]
  in
  let current = gate_doc [ bench_doc ~methods:[ ("pp", 1.0) ] "x" ] in
  let lax = Gate.run ~baseline ~current ~pct:10.0 () in
  Alcotest.(check int) "lax: no failures" 0 (List.length lax.Gate.failures);
  Alcotest.(check int) "lax: one warning" 1 (List.length lax.Gate.warnings);
  let w = List.hd lax.Gate.warnings in
  Alcotest.(check string) "warning names the bench" "x" w.Gate.bench;
  Alcotest.(check string) "warning names the metric" "ppp.overhead" w.Gate.metric;
  let strict = Gate.run ~strict:true ~baseline ~current ~pct:10.0 () in
  Alcotest.(check int) "strict: the omission fails" 1
    (List.length strict.Gate.failures);
  Alcotest.(check int) "strict: no separate warning" 0
    (List.length strict.Gate.warnings);
  Alcotest.(check bool) "strict failure carries NaN current" true
    (Float.is_nan (List.hd strict.Gate.failures).Gate.current);
  (* A real regression still fails either way, and check keeps its old
     lax semantics. *)
  let regressed = gate_doc [ bench_doc ~methods:[ ("pp", 2.0); ("ppp", 1.0) ] "x" ] in
  Alcotest.(check int) "regression fails non-strict" 1
    (List.length (Gate.check ~baseline ~current:regressed ~pct:10.0))

let floors_doc methods =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "ppp-quality-floors/1");
      ( "methods",
        Jsonx.Obj
          (List.map
             (fun (m, f) -> (m, Jsonx.Obj [ ("min_overlap", Jsonx.Float f) ]))
             methods) );
    ]

let quality_report_doc methods =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "ppp-quality/1");
      ( "summary",
        Jsonx.Obj
          [
            ( "methods",
              Jsonx.Obj
                (List.map
                   (fun (m, v) ->
                     (m, Jsonx.Obj [ ("min_overlap", Jsonx.Float v) ]))
                   methods) );
          ] );
    ]

let test_gate_floors () =
  let report = quality_report_doc [ ("ppp", 93.0); ("tpp", 99.0) ] in
  Alcotest.(check int) "clears its floors" 0
    (List.length
       (Gate.check_floors ~floors:(floors_doc [ ("ppp", 90.0) ]) ~report));
  let fails =
    Gate.check_floors ~floors:(floors_doc [ ("ppp", 95.0) ]) ~report
  in
  Alcotest.(check int) "below the floor fails" 1 (List.length fails);
  let f = List.hd fails in
  Alcotest.(check string) "failure names the floor" "ppp.min_overlap" f.Gate.metric;
  Alcotest.(check bool) "failure carries both sides" true
    (approx 95.0 f.Gate.baseline && approx 93.0 f.Gate.current);
  Alcotest.(check int) "a method absent from the summary fails" 1
    (List.length
       (Gate.check_floors ~floors:(floors_doc [ ("edge", 10.0) ])
          ~report:(quality_report_doc [ ("ppp", 93.0) ])));
  Alcotest.(check int) "schema mismatch fails" 1
    (List.length
       (Gate.check_floors ~floors:(floors_doc [])
          ~report:(gate_doc [])))

(* {2 Drift-mode reoptimize and the tiered/drift gate floors} *)

let test_reoptimize_drift () =
  let b = Ppp_workloads.Spec.find "mcf" in
  let p () = b.Ppp_workloads.Spec.build ~scale:1 in
  let sampling = Ppp_interp.Sampling.spec ~seed:7 ~denom:4 () in
  let run () =
    H.reoptimize ~iterations:2 ~sampling ~decay:0.5 ~name:"mcf" (p ())
  in
  let gens = run () in
  Alcotest.(check int) "two generations" 2 (List.length gens);
  let g2 = List.nth gens 1 in
  Alcotest.(check bool) "gen 2 salvaged count mass from the drift store" true
    (g2.H.matched_fraction > 0.0);
  (* Fixed seed, fixed decay: the drift loop is as deterministic as the
     pristine one. *)
  List.iter2
    (fun (a : H.generation) (b : H.generation) ->
      Alcotest.(check bool) "deterministic stability" true
        (approx
           (Decision.stability a.H.decision_diff)
           (Decision.stability b.H.decision_diff));
      Alcotest.(check bool) "deterministic matched fraction" true
        (approx a.H.matched_fraction b.H.matched_fraction))
    gens (run ());
  Alcotest.check_raises "decay outside (0, 1] is rejected"
    (Invalid_argument "Pipeline.reoptimize: decay must be in (0, 1]") (fun () ->
      ignore (H.reoptimize ~decay:0.0 ~name:"mcf" (p ())))

let tiered_doc ~saving ~improvement name =
  Jsonx.Obj
    [
      ("name", Jsonx.Str name);
      ( "tiered",
        Jsonx.Obj
          [
            ("instr_saving", Jsonx.Float saving);
            ("layout", Jsonx.Obj [ ("improvement", Jsonx.Float improvement) ]);
          ] );
      ("drift", Jsonx.Obj [ ("drift_stability", Jsonx.Float 0.6) ]);
    ]

let test_gate_tiered_drift_floors () =
  let baseline = gate_doc [ tiered_doc ~saving:0.9 ~improvement:2.0 "x" ] in
  Alcotest.(check int) "identical documents pass" 0
    (List.length (Gate.check ~baseline ~current:baseline ~pct:5.0));
  (* These are floors: sinking below baseline is the regression,
     exceeding it never is. *)
  let sunk = gate_doc [ tiered_doc ~saving:0.5 ~improvement:(-1.0) "x" ] in
  let fails = Gate.check ~baseline ~current:sunk ~pct:5.0 in
  Alcotest.(check int) "retired saving and layout floors both fail" 2
    (List.length fails);
  Alcotest.(check bool) "failures name the tiered metrics" true
    (List.exists (fun (f : Gate.failure) -> f.Gate.metric = "tiered.instr_saving") fails
    && List.exists
         (fun (f : Gate.failure) -> f.Gate.metric = "tiered.layout.improvement")
         fails);
  let better = gate_doc [ tiered_doc ~saving:0.99 ~improvement:3.0 "x" ] in
  Alcotest.(check int) "improving on the floor passes" 0
    (List.length (Gate.check ~baseline ~current:better ~pct:5.0));
  let churned =
    gate_doc
      [
        Jsonx.Obj
          [
            ("name", Jsonx.Str "x");
            ("drift", Jsonx.Obj [ ("drift_stability", Jsonx.Float 0.2) ]);
          ];
      ]
  in
  let fails = Gate.run ~baseline ~current:churned ~pct:5.0 () in
  Alcotest.(check bool) "drift stability floor fails on churn" true
    (List.exists
       (fun (f : Gate.failure) -> f.Gate.metric = "drift.drift_stability")
       fails.Gate.failures);
  Alcotest.(check bool) "dropping the tiered object only warns (lax)" true
    (List.exists
       (fun (w : Gate.warning) -> w.Gate.metric = "tiered")
       fails.Gate.warnings);
  let strict = Gate.run ~strict:true ~baseline ~current:churned ~pct:5.0 () in
  Alcotest.(check bool) "strict turns the missing tiered object fatal" true
    (List.exists
       (fun (f : Gate.failure) -> f.Gate.metric = "tiered")
       strict.Gate.failures)

(* {2 VM telemetry} *)

(* Everything observable about an outcome, canonically rendered; the
   profile sections reuse the dump writer so nothing is forgotten. *)
let outcome_digest p (o : Interp.outcome) =
  Printf.sprintf "ret=%s out=%s base=%d instr=%d dyn=%d paths=%d term=%s\n%s"
    (match o.Interp.return_value with
    | None -> "-"
    | Some v -> string_of_int v)
    (String.concat "," (List.map string_of_int o.Interp.output))
    o.Interp.base_cost o.Interp.instr_cost o.Interp.dyn_instrs o.Interp.dyn_paths
    (match o.Interp.termination with
    | Interp.Finished -> "finished"
    | Interp.Out_of_fuel { stack_depth } ->
        Printf.sprintf "out_of_fuel(%d)" stack_depth)
    (Raw.to_string
       (Raw.of_program ?edges:o.Interp.edge_profile ?paths:o.Interp.path_profile
          p))

let prop_telemetry_transparent =
  QCheck.Test.make
    ~name:"outcomes are byte-identical with and without a telemetry ring"
    ~count:15
    QCheck.(pair small_int (option (int_range 50 5000)))
    (fun (seed, fuel) ->
      let p = Gen.program ~seed in
      let config =
        match fuel with
        | None -> Interp.default_config
        | Some fuel -> { Interp.default_config with fuel }
      in
      let plain = Interp.run ~config p in
      let ring = Telemetry.create ~capacity:16 ~interval:7 () in
      let sampled =
        Interp.run ~config:{ config with telemetry = Some ring } p
      in
      Telemetry.taken ring > 0
      && outcome_digest p plain = outcome_digest p sampled)

let test_telemetry_ring () =
  let p = Gen.program ~seed:0 in
  let ring = Telemetry.create ~capacity:4 ~interval:1 () in
  let o = Interp.run ~config:{ Interp.default_config with telemetry = Some ring } p in
  let taken = Telemetry.taken ring in
  Alcotest.(check bool) "samples were taken" true (taken > 4);
  Alcotest.(check int) "ring keeps the newest capacity samples" 4
    (List.length (Telemetry.samples ring));
  Alcotest.(check int) "older samples counted as dropped" (taken - 4)
    (Telemetry.dropped ring);
  let seqs = List.map (fun s -> s.Telemetry.seq) (Telemetry.samples ring) in
  Alcotest.(check (list int)) "retained seqs are the newest, in order"
    (List.init 4 (fun i -> taken - 4 + i))
    seqs;
  List.iter
    (fun s ->
      Alcotest.(check bool) "progress counters never exceed the outcome" true
        (s.Telemetry.dyn_instrs <= o.Interp.dyn_instrs
        && s.Telemetry.base_cost <= o.Interp.base_cost
        && s.Telemetry.dyn_paths <= o.Interp.dyn_paths))
    (Telemetry.samples ring);
  List.iter
    (fun (_, d_instrs, d_paths) ->
      Alcotest.(check bool) "windowed rates are non-negative" true
        (d_instrs >= 0 && d_paths >= 0))
    (Telemetry.rates ring);
  Alcotest.(check int) "rates has one entry per window" 3
    (List.length (Telemetry.rates ring));
  let json = Jsonx.canonical (Telemetry.to_json ring) in
  Alcotest.(check bool) "telemetry JSON round-trips" true
    (Jsonx.of_string (Jsonx.to_string json) = json);
  Telemetry.reset ring;
  Alcotest.(check int) "reset forgets samples" 0 (Telemetry.taken ring);
  Alcotest.(check int) "reset forgets drops" 0 (Telemetry.dropped ring);
  Alcotest.(check (list int)) "reset empties the ring" []
    (List.map (fun s -> s.Telemetry.seq) (Telemetry.samples ring))

let test_telemetry_metrics () =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled false)
    (fun () ->
      let ring = Telemetry.create ~capacity:8 ~interval:5 () in
      ignore
        (Interp.run
           ~config:{ Interp.default_config with telemetry = Some ring }
           (Gen.program ~seed:4));
      let snap = Metrics.snapshot () in
      Alcotest.(check (option int)) "vm.telemetry.samples counts taken"
        (Some (Telemetry.taken ring))
        (Metrics.counter_value snap "vm.telemetry.samples");
      Alcotest.(check (option int)) "vm.telemetry.dropped counts evictions"
        (Some (Telemetry.dropped ring))
        (Metrics.counter_value snap "vm.telemetry.dropped"))

(* {2 Trace counters, metadata, and escaping} *)

let test_trace_counters_and_escaping () =
  Trace.start ();
  Fun.protect ~finally:Trace.stop (fun () ->
      (* Hostile names: quotes, backslashes, control bytes. Every string
         must escape through Jsonx into standard JSON. *)
      Trace.label_process ~thread:"th\"read\\" "pp\"pc\n\x01";
      let ring = Telemetry.create ~capacity:8 ~interval:3 () in
      ignore
        (Interp.run
           ~config:{ Interp.default_config with telemetry = Some ring }
           (Gen.program ~seed:6));
      Telemetry.emit_trace_counters ~name:"vm\"x" ring;
      let events = Trace.events () in
      let metadata =
        List.filter (fun (e : Trace.event) -> e.Trace.ph = `Metadata) events
      in
      let counters =
        List.filter (fun (e : Trace.event) -> e.Trace.ph = `Counter) events
      in
      Alcotest.(check int) "process and thread metadata" 2
        (List.length metadata);
      Alcotest.(check (list string)) "metadata event names"
        [ "process_name"; "thread_name" ]
        (List.sort compare
           (List.map (fun (e : Trace.event) -> e.Trace.name) metadata));
      Alcotest.(check int) "one counter event per retained sample"
        (List.length (Telemetry.samples ring))
        (List.length
           (List.filter
              (fun (e : Trace.event) -> e.Trace.name = "vm\"x.cost")
              counters));
      let ts =
        List.filter_map
          (fun (e : Trace.event) ->
            if e.Trace.name = "vm\"x.paths" then Some e.Trace.ts_us else None)
          counters
      in
      Alcotest.(check bool) "counter timestamps are non-decreasing" true
        (List.for_all2 (fun a b -> a <= b) ts (List.tl ts @ [ infinity ]));
      (* The full envelope, hostile bytes and all, is standard JSON. *)
      let text = Jsonx.to_string (Trace.to_json ()) in
      let json = Jsonx.of_string text in
      Alcotest.(check bool) "trace JSON with hostile names round-trips" true
        (Jsonx.member json "traceEvents" <> None))

(* {2 Histogram merge properties (Metrics.merge)} *)

let bounds = [| 1.0; 10.0; 100.0 |]

let snapshot_gen =
  let open QCheck.Gen in
  let histogram =
    map2
      (fun buckets sum ->
        Metrics.Histogram
          {
            bounds;
            buckets = Array.of_list buckets;
            sum = float_of_int sum;
            observations = List.fold_left ( + ) 0 buckets;
          })
      (list_repeat 4 (int_bound 1000))
      (int_bound 10_000)
  in
  let value name =
    match name.[0] with
    | 'h' -> histogram
    | 'c' -> map (fun n -> Metrics.Counter n) (int_bound 1000)
    | _ -> map (fun n -> Metrics.Gauge (float_of_int n)) (int_bound 100)
  in
  let entry name = map (fun v -> (name, v)) (value name) in
  let names = [ "c.one"; "c.two"; "g.one"; "h.one"; "h.two" ] in
  (* Each snapshot carries a random sorted subset of a shared name pool,
     so merges hit both the both-sides and one-side paths. *)
  map2
    (fun keep entries ->
      List.filteri (fun i _ -> List.nth keep i) entries)
    (list_repeat (List.length names) bool)
    (flatten_l (List.map entry names))

let arb_snapshot =
  QCheck.make ~print:(fun s -> Fmt.str "%a" Metrics.pp_snapshot s) snapshot_gen

let prop_merge_commutative =
  QCheck.Test.make ~name:"snapshot merge is commutative" ~count:100
    QCheck.(pair arb_snapshot arb_snapshot)
    (fun (a, b) -> Metrics.merge [ a; b ] = Metrics.merge [ b; a ])

let prop_merge_associative =
  QCheck.Test.make ~name:"snapshot merge is associative" ~count:100
    QCheck.(triple arb_snapshot arb_snapshot arb_snapshot)
    (fun (a, b, c) ->
      Metrics.merge [ Metrics.merge [ a; b ]; c ]
      = Metrics.merge [ a; Metrics.merge [ b; c ] ]
      && Metrics.merge [ a; Metrics.merge [ b; c ] ] = Metrics.merge [ a; b; c ])

let prop_merge_identity =
  QCheck.Test.make ~name:"the empty snapshot is the merge identity" ~count:100
    arb_snapshot (fun a ->
      Metrics.merge [ a; [] ] = Metrics.merge [ a ]
      && Metrics.merge [ []; a ] = Metrics.merge [ a ])

let test_merge_saturates () =
  let near = [ ("c", Metrics.Counter (max_int - 5)) ] in
  let more = [ ("c", Metrics.Counter 100) ] in
  match Metrics.merge [ near; more ] with
  | [ ("c", Metrics.Counter v) ] ->
      Alcotest.(check int) "counter addition saturates" max_int v
  | _ -> Alcotest.fail "unexpected merge shape"

(* {2 The quality report end-to-end} *)

let test_quality_report () =
  let benches = Report.prepare_all ~names:[ "mcf" ] () in
  let rows =
    List.map (QR.bench_row ~iterations:2 ~telemetry_interval:1000) benches
  in
  let doc = Jsonx.canonical (QR.wrap rows) in
  let get j path =
    List.fold_left
      (fun acc k -> Option.bind acc (fun j -> Jsonx.member j k))
      (Some j) path
  in
  let fnum j path =
    match get j path with
    | Some (Jsonx.Float f) -> f
    | Some (Jsonx.Int i) -> float_of_int i
    | _ -> Alcotest.fail (String.concat "." path ^ " missing")
  in
  Alcotest.(check bool) "schema" true
    (get doc [ "schema" ] = Some (Jsonx.Str "ppp-quality/1"));
  let b =
    match get doc [ "benchmarks" ] with
    | Some (Jsonx.Arr [ b ]) -> b
    | _ -> Alcotest.fail "expected one benchmark row"
  in
  List.iter
    (fun m ->
      let ov = fnum b [ "methods"; m; "overlap_pct" ] in
      Alcotest.(check bool) (m ^ " overlap in range") true
        (ov >= 0.0 && ov <= 100.0 +. 1e-9);
      (* The summary's worst-workload floor equals the row for a
         one-workload report. *)
      Alcotest.(check bool) (m ^ " summary floor matches") true
        (approx ov (fnum doc [ "summary"; "methods"; m; "min_overlap" ])))
    QR.method_names;
  (* PPP estimates the truth closely on this workload; the committed CI
     floors rely on that being comfortably high. *)
  Alcotest.(check bool) "ppp overlap is high" true
    (fnum b [ "methods"; "ppp"; "overlap_pct" ] > 50.0);
  (match get b [ "generations" ] with
  | Some (Jsonx.Arr gens) -> Alcotest.(check int) "two generations" 2 (List.length gens)
  | _ -> Alcotest.fail "generations missing");
  Alcotest.(check bool) "telemetry series attached" true
    (fnum b [ "telemetry"; "taken" ] > 0.0);
  Alcotest.(check bool) "decision log attached" true
    (fnum b [ "decisions"; "count" ] >= 0.0);
  (* The rendered report is standard JSON (float printing truncates
     precision, so structural equality is checked on the reparse's
     shape, not its values) and gates against floors derived from it. *)
  let reparsed = Jsonx.of_string (Jsonx.to_string doc) in
  Alcotest.(check bool) "rendered report parses back" true
    (Jsonx.member reparsed "schema" = Some (Jsonx.Str "ppp-quality/1"));
  let floors_at delta =
    floors_doc
      (List.map
         (fun m -> (m, fnum doc [ "summary"; "methods"; m; "min_overlap" ] +. delta))
         QR.method_names)
  in
  Alcotest.(check int) "floors just below pass" 0
    (List.length (Gate.check_floors ~floors:(floors_at (-0.5)) ~report:doc));
  Alcotest.(check int) "floors just above fail every method"
    (List.length QR.method_names)
    (List.length (Gate.check_floors ~floors:(floors_at 0.5) ~report:doc))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  qsuite
    [
      prop_overlap_reflexive;
      prop_overlap_symmetric;
      prop_overlap_bounded;
      prop_overlap_faulted;
      prop_divergence_zero_on_self;
      prop_divergence_sums;
      prop_hot_report_sane;
      prop_telemetry_transparent;
      prop_merge_commutative;
      prop_merge_associative;
      prop_merge_identity;
    ]
  @ [
      Alcotest.test_case "overlap degrades monotonically" `Quick
        test_overlap_monotone_degradation;
      Alcotest.test_case "overlap on empty profiles" `Quick test_overlap_empty;
      Alcotest.test_case "composite score" `Quick test_composite;
      Alcotest.test_case "hot report vs itself" `Quick test_hot_report_self;
      Alcotest.test_case "hot report vs empty candidate" `Quick
        test_hot_report_empty_candidate;
      Alcotest.test_case "cross-version remap" `Quick test_remap_cross_version;
      Alcotest.test_case "identity remap" `Quick test_remap_identity;
      Alcotest.test_case "decision keys ignore magnitudes" `Quick
        test_decision_key_ignores_magnitudes;
      Alcotest.test_case "decision diff and stability" `Quick test_decision_diff;
      Alcotest.test_case "pipeline exposes its decision log" `Quick
        test_pipeline_decisions;
      Alcotest.test_case "reoptimize diffs generations" `Quick
        test_reoptimize_decision_diffs;
      Alcotest.test_case "gate reports missing metrics" `Quick
        test_gate_missing_metric;
      Alcotest.test_case "gate enforces quality floors" `Quick test_gate_floors;
      Alcotest.test_case "reoptimize drift mode" `Quick test_reoptimize_drift;
      Alcotest.test_case "gate enforces tiered and drift floors" `Quick
        test_gate_tiered_drift_floors;
      Alcotest.test_case "telemetry ring" `Quick test_telemetry_ring;
      Alcotest.test_case "telemetry metrics counters" `Quick
        test_telemetry_metrics;
      Alcotest.test_case "trace counters, metadata, escaping" `Quick
        test_trace_counters_and_escaping;
      Alcotest.test_case "histogram merge saturates" `Quick test_merge_saturates;
      Alcotest.test_case "quality report end-to-end" `Quick test_quality_report;
    ]
