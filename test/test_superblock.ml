module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Superblock = Ppp_opt.Superblock
module Path_profile = Ppp_profile.Path_profile
module Profile_io = Ppp_profile.Profile_io
module Decision = Ppp_opt.Decision
module Session = Ppp_session.Session
module H = Ppp_harness.Pipeline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The hottest traced path of each routine of a program. *)
let hottest_paths p =
  let o = Interp.run p in
  let profile = Option.get o.Interp.path_profile in
  let acc = ref [] in
  Path_profile.iter_routines profile (fun name t ->
      let best = ref None in
      Path_profile.iter t (fun path n ->
          match !best with
          | Some (_, n') when n' >= n -> ()
          | _ -> best := Some (path, n));
      match !best with Some (path, _) -> acc := (name, path) :: !acc | None -> ());
  (o, !acc)

let test_superblock_preserves_and_speeds () =
  let p = (Ppp_workloads.Spec.find "mcf").Ppp_workloads.Spec.build ~scale:1 in
  let o, hot = hottest_paths p in
  let p', stats = Superblock.form p ~hot_paths:hot in
  check_bool "did something" true
    (stats.Superblock.jumps_merged > 0 || stats.Superblock.blocks_duplicated > 0);
  let o' = Interp.run p' in
  check_bool "output preserved" true (o.Interp.output = o'.Interp.output);
  check_bool "not slower" true (o'.Interp.base_cost <= o.Interp.base_cost)

let test_superblock_empty_paths () =
  let p = (Ppp_workloads.Spec.find "gap").Ppp_workloads.Spec.build ~scale:1 in
  let p', stats = Superblock.form p ~hot_paths:[] in
  check_bool "no-op without paths" true (stats.Superblock.routines_optimized = 0);
  check_bool "program unchanged" true (p' = p)

let prop_superblock_preserves_output =
  QCheck.Test.make ~name:"superblock formation preserves output" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o, hot = hottest_paths p in
      let p', _ = Superblock.form p ~hot_paths:hot in
      let o' = Interp.run p' in
      o.Interp.output = o'.Interp.output
      && o.Interp.return_value = o'.Interp.return_value)

let prop_superblock_never_slower =
  QCheck.Test.make ~name:"superblock formation never increases cost" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o, hot = hottest_paths p in
      let p', _ = Superblock.form p ~hot_paths:hot in
      (Interp.run p').Interp.base_cost <= o.Interp.base_cost)

(* Full dynamic-optimizer integration: PPP-measured hot paths drive the
   superblock pass (the staged_optimizer example as a test). *)
let test_staged_loop () =
  let p = (Ppp_workloads.Spec.find "bzip2").Ppp_workloads.Spec.build ~scale:1 in
  let prep = H.prepare ~name:"bzip2" p in
  let p1 = prep.H.optimized in
  let ep = Option.get prep.H.base_outcome.Interp.edge_profile in
  let inst = Ppp_core.Instrument.instrument p1 ep Ppp_core.Config.ppp in
  let o2 =
    Interp.run
      ~config:
        { Interp.default_config with instrumentation = Some inst.Ppp_core.Instrument.rt }
      p1
  in
  let tables = Option.get o2.Interp.instr_state in
  let hot = ref [] in
  Hashtbl.iter
    (fun name table ->
      let plan = Hashtbl.find inst.Ppp_core.Instrument.plans name in
      let best = ref None in
      Ppp_interp.Instr_rt.Table.iter_nonzero table (fun k c ->
          match !best with
          | Some (_, c') when c' >= c -> ()
          | _ -> (
              match Ppp_core.Instrument.decoded_path plan k with
              | Some path -> best := Some (path, c)
              | None -> ()));
      match !best with Some (path, _) -> hot := (name, path) :: !hot | None -> ())
    tables;
  let p3, _ = Superblock.form p1 ~hot_paths:!hot in
  let o3 = Interp.run p3 in
  check_bool "staged loop output preserved" true
    (o3.Interp.output = prep.H.base_outcome.Interp.output);
  check_bool "staged loop speeds up" true
    (o3.Interp.base_cost < prep.H.base_outcome.Interp.base_cost)

(* {2 The closed pipeline loop} *)

let sb_flags = { H.default_flags with H.superblocks = true; H.layout = true }

let sb_decisions ds =
  List.filter (function Decision.Superblock _ -> true | _ -> false) ds

(* Reoptimizing with superblocks on dirties exactly the straightened
   routines (plus whatever inlining/unrolling dirtied), records one
   Superblock decision per straightened routine with distinct stable
   keys, and actually invalidates session artifacts for them. *)
let test_reoptimize_dirties_straightened () =
  let p = (Ppp_workloads.Spec.find "bzip2").Ppp_workloads.Spec.build ~scale:1 in
  let session = Session.create ~name:"sb-dirty" () in
  let gens = H.reoptimize ~session ~flags:sb_flags ~iterations:3 ~name:"bzip2" p in
  check_int "three generations" 3 (List.length gens);
  List.iter
    (fun (g : H.generation) ->
      let sb = g.H.prep.H.superblock_stats in
      List.iter
        (fun r ->
          check_bool
            (Printf.sprintf "gen %d: straightened %s is dirty" g.H.gen r)
            true
            (List.mem r g.H.dirty))
        sb.Superblock.touched;
      let ds = sb_decisions g.H.decisions in
      check_int
        (Printf.sprintf "gen %d: one decision per straightened routine" g.H.gen)
        sb.Superblock.routines_optimized (List.length ds);
      let keys = List.map Decision.key ds in
      check_int
        (Printf.sprintf "gen %d: decision keys distinct" g.H.gen)
        (List.length keys)
        (List.length (List.sort_uniq compare keys));
      List.iter
        (fun d ->
          check_bool
            (Printf.sprintf "gen %d: decision names a touched routine" g.H.gen)
            true
            (List.mem (Decision.routine d) sb.Superblock.touched))
        ds)
    gens;
  (* The first generation has no decoded profile yet; later ones must
     actually straighten, and the dirtied routines must invalidate. *)
  let g2 = List.nth gens 1 in
  check_bool "gen 2 straightened something" true
    (g2.H.prep.H.superblock_stats.Superblock.routines_optimized > 0);
  check_bool "session saw invalidations" true
    ((Session.stats session).Session.invalidations > 0)

(* reoptimize ~iterations:N is exactly N manual
   prepare / save-profile / stale-load / prepare_with_profile round
   trips: the loop adds orchestration, never different optimization. *)
let test_iterate_equals_manual_roundtrips () =
  let name = "mcf" in
  let p = (Ppp_workloads.Spec.find name).Ppp_workloads.Spec.build ~scale:1 in
  let gens = H.reoptimize ~flags:sb_flags ~iterations:3 ~name p in
  let final = (List.nth gens 2).H.prep.H.optimized in
  let session = Session.create ~name:"sb-manual" () in
  let prep = ref (H.prepare ~session ~flags:sb_flags ~name p) in
  for _ = 2 to 3 do
    let cur = !prep.H.optimized in
    let buf = Buffer.create 65536 in
    let ppf = Format.formatter_of_buffer buf in
    Profile_io.save
      ?edges:!prep.H.base_outcome.Interp.edge_profile
      ?paths:!prep.H.base_outcome.Interp.path_profile ppf cur;
    Format.pp_print_flush ppf ();
    match Profile_io.load cur (Buffer.contents buf) with
    | Ok loaded ->
        prep := H.prepare_with_profile ~session ~flags:sb_flags ~name ~loaded cur
    | Error ds ->
        Alcotest.failf "profile round-trip rejected: %a"
          Ppp_resilience.Diagnostic.pp_list ds
  done;
  Alcotest.(check string)
    "iterate-3 = 3 manual round-trips"
    (Ppp_ir.Pp_ir.to_string final)
    (Ppp_ir.Pp_ir.to_string !prep.H.optimized)

(* A hot path that no longer names CFG edges of the routine is a
   structured mismatch — reported, never fatal, program untouched. *)
let test_stale_path_mismatch () =
  let p = (Ppp_workloads.Spec.find "gap").Ppp_workloads.Spec.build ~scale:1 in
  let rname = (List.hd p.Ir.routines).Ir.name in
  let p', stats = Superblock.form p ~hot_paths:[ (rname, [ 1_000_000 ]) ] in
  check_bool "program unchanged" true (p' = p);
  check_int "no routines straightened" 0 stats.Superblock.routines_optimized;
  check_int "no decisions" 0 (List.length stats.Superblock.decisions);
  (match stats.Superblock.mismatches with
  | [ m ] ->
      check_bool "names the routine" true (m.Superblock.mm_routine = rname);
      check_bool "classified stale" true
        (m.Superblock.mm_reason = Superblock.Stale_path);
      check_bool "mismatch renders" true
        (String.length (Format.asprintf "%a" Superblock.pp_mismatch m) > 0)
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms));
  (* And straightening twice from the same inputs yields the same
     decision keys: the log is stable, not run-dependent. *)
  let o = Interp.run p in
  let profile = Option.get o.Interp.path_profile in
  let hot = ref [] in
  Path_profile.iter_routines profile (fun name t ->
      Path_profile.iter t (fun path _ -> hot := (name, path) :: !hot));
  let hot = List.sort compare !hot in
  let _, s1 = Superblock.form p ~hot_paths:hot in
  let _, s2 = Superblock.form p ~hot_paths:hot in
  Alcotest.(check (list string))
    "decision keys stable across runs"
    (List.map Decision.key s1.Superblock.decisions)
    (List.map Decision.key s2.Superblock.decisions)

(* [path_weights] feeds only the decision log's weight field; the
   transformed program is a pure function of the program and the paths. *)
let prop_path_weights_never_affect_transform =
  QCheck.Test.make ~name:"path_weights never affect the transformation"
    ~count:40
    QCheck.(pair small_int small_int)
    (fun (seed, wseed) ->
      let p = Ppp_workloads.Gen.program ~seed in
      let _, hot = hottest_paths p in
      let weights =
        List.mapi
          (fun i (name, _) -> (name, ((wseed + 1) * (i + 13)) mod 100_000))
          hot
      in
      let p1, s1 = Superblock.form p ~hot_paths:hot in
      let p2, s2 = Superblock.form p ~path_weights:weights ~hot_paths:hot in
      p1 = p2
      && s1.Superblock.routines_optimized = s2.Superblock.routines_optimized
      && s1.Superblock.touched = s2.Superblock.touched
      && List.map Decision.key s1.Superblock.decisions
         = List.map Decision.key s2.Superblock.decisions)

(* Salvaging a pre-straightening profile onto the straightened program
   through the stale matcher never raises and never invents mass. *)
let prop_salvage_never_raises_conserves_mass =
  QCheck.Test.make
    ~name:"stale salvage onto the straightened program conserves mass"
    ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o, hot = hottest_paths p in
      let p', _ = Superblock.form p ~hot_paths:hot in
      let dump =
        Format.asprintf "%t" (fun ppf ->
            Profile_io.save ?edges:o.Interp.edge_profile
              ?paths:o.Interp.path_profile ppf p)
      in
      let path_mass profile =
        let total = ref 0 in
        Path_profile.iter_routines profile (fun _ t ->
            Path_profile.iter t (fun _ n -> total := !total + n));
        !total
      in
      let original_mass =
        match o.Interp.path_profile with Some pp -> path_mass pp | None -> 0
      in
      match Profile_io.load p' dump with
      | Error ds -> ds <> [] (* rejection must carry diagnostics *)
      | Ok loaded ->
          let f = loaded.Profile_io.matched_fraction in
          f >= 0.0 && f <= 1.0
          && path_mass loaded.Profile_io.paths <= original_mass)

(* End to end: feed the pre-straightening profile of a workload through
   save / stale-load / prepare_with_profile with superblocks on — the
   pipeline must absorb the salvaged profile without raising and produce
   a program with unchanged outcomes. *)
let test_salvaged_profile_closes_loop () =
  let name = "twolf" in
  let p = (Ppp_workloads.Spec.find name).Ppp_workloads.Spec.build ~scale:1 in
  let o, hot = hottest_paths p in
  let p', _ = Superblock.form p ~hot_paths:hot in
  let dump =
    Format.asprintf "%t" (fun ppf ->
        Profile_io.save ?edges:o.Interp.edge_profile
          ?paths:o.Interp.path_profile ppf p)
  in
  match Profile_io.load p' dump with
  | Error ds ->
      Alcotest.failf "salvage rejected: %a" Ppp_resilience.Diagnostic.pp_list ds
  | Ok loaded ->
      let prep =
        H.prepare_with_profile ~flags:sb_flags ~name ~loaded p'
      in
      let o' = Interp.run prep.H.optimized in
      check_bool "output preserved through the salvaged loop" true
        (o'.Interp.output = o.Interp.output
        && o'.Interp.return_value = o.Interp.return_value)

let suite =
  [
    Alcotest.test_case "preserves and speeds" `Slow test_superblock_preserves_and_speeds;
    Alcotest.test_case "empty hot paths" `Quick test_superblock_empty_paths;
    Alcotest.test_case "staged optimizer loop" `Slow test_staged_loop;
    Alcotest.test_case "reoptimize dirties straightened routines" `Slow
      test_reoptimize_dirties_straightened;
    Alcotest.test_case "iterate-N equals N manual round-trips" `Slow
      test_iterate_equals_manual_roundtrips;
    Alcotest.test_case "stale hot path becomes a mismatch" `Quick
      test_stale_path_mismatch;
    Alcotest.test_case "salvaged profile closes the loop" `Slow
      test_salvaged_profile_closes_loop;
    QCheck_alcotest.to_alcotest prop_superblock_preserves_output;
    QCheck_alcotest.to_alcotest prop_superblock_never_slower;
    QCheck_alcotest.to_alcotest prop_path_weights_never_affect_transform;
    QCheck_alcotest.to_alcotest prop_salvage_never_raises_conserves_mass;
  ]
