(* Tests for the Ppp_obs observability layer: metrics registry
   semantics, JSON round-tripping, Chrome trace export, file sinks, the
   interpreter/pipeline integration hooks, and the heat-map DOT
   export. *)

module Metrics = Ppp_obs.Metrics
module Trace = Ppp_obs.Trace
module Jsonx = Ppp_obs.Jsonx
module Sink = Ppp_obs.Sink
module Interp = Ppp_interp.Interp
module Instrument = Ppp_core.Instrument
module Config = Ppp_core.Config
module H = Ppp_harness.Pipeline
module Graph = Ppp_cfg.Graph
module Dot = Ppp_cfg.Dot

let with_metrics f =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let program () =
  Ppp_ir.Parse.program_of_string
    {|routine main(0) regs 3 {
entry:
  r0 = 0
  jump head
head:
  r1 = r0 < 25
  br r1, body, done
body:
  r2 = r0 & 1
  br r2, odd, even
odd:
  r0 = r0 + 1
  jump head
even:
  r0 = r0 + 1
  jump head
done:
  ret r0
}|}

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_disabled_is_noop () =
  Metrics.set_enabled false;
  Metrics.reset ();
  let c = Metrics.counter "test.gate.counter" in
  let g = Metrics.gauge "test.gate.gauge" in
  let h = Metrics.histogram "test.gate.histogram" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.set g 3.5;
  Metrics.observe h 7.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "counter untouched" (Some 0)
    (Metrics.counter_value snap "test.gate.counter");
  Alcotest.(check int) "value accessor" 0 (Metrics.value c)

let test_instruments_record () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.rec.counter" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "counter" 7 (Metrics.value c);
  (* Creating the same name again returns the same instrument. *)
  Metrics.incr (Metrics.counter "test.rec.counter");
  Alcotest.(check int) "interned" 8 (Metrics.value c);
  let g = Metrics.gauge "test.rec.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram ~bounds:[| 1.0; 10.0 |] "test.rec.histogram" in
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  Metrics.observe h 1e9;
  (match List.assoc "test.rec.histogram" (Metrics.snapshot ()) with
  | Metrics.Histogram { buckets; observations; sum; _ } ->
      Alcotest.(check int) "observations" 3 observations;
      Alcotest.(check (float 1.0)) "sum" (1e9 +. 5.5) sum;
      Alcotest.(check (array int)) "buckets" [| 1; 1; 1 |] buckets
  | _ -> Alcotest.fail "expected histogram");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.value c)

let test_json_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("s", Jsonx.Str "quote\" back\\slash\nnewline\ttab");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 1.5);
        ("big", Jsonx.Float 2.5e10);
        ("t", Jsonx.Bool true);
        ("n", Jsonx.Null);
        ("empty_arr", Jsonx.Arr []);
        ("empty_obj", Jsonx.Obj []);
        ("nested", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Obj [ ("k", Jsonx.Str "v") ] ]);
      ]
  in
  let s = Jsonx.to_string v in
  let v' = Jsonx.of_string s in
  Alcotest.(check bool) "roundtrip" true (v = v');
  (* Non-finite floats degrade to null rather than emitting invalid JSON. *)
  let s2 = Jsonx.to_string (Jsonx.Arr [ Jsonx.Float Float.infinity ]) in
  Alcotest.(check bool) "inf -> null" true (Jsonx.of_string s2 = Jsonx.Arr [ Jsonx.Null ]);
  match Jsonx.of_string "{broken" with
  | exception Jsonx.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_interp_counters_match_outcome () =
  with_metrics @@ fun () ->
  let o = Interp.run (program ()) in
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "dyn_instrs" (Some o.Interp.dyn_instrs)
    (Metrics.counter_value snap "interp.dyn_instrs");
  Alcotest.(check (option int))
    "dyn_paths" (Some o.Interp.dyn_paths)
    (Metrics.counter_value snap "interp.dyn_paths");
  Alcotest.(check (option int))
    "base_cost" (Some o.Interp.base_cost)
    (Metrics.counter_value snap "interp.base_cost");
  Alcotest.(check (option int))
    "fuel" (Some o.Interp.dyn_instrs)
    (Metrics.counter_value snap "interp.fuel_consumed");
  Alcotest.(check (option int))
    "runs" (Some 1)
    (Metrics.counter_value snap "interp.runs")

let test_instrumented_run_counters () =
  let p = program () in
  let ep = Option.get (Interp.run p).Interp.edge_profile in
  let inst = Instrument.instrument p ep Config.pp in
  with_metrics @@ fun () ->
  let o =
    Interp.run
      ~config:
        { Interp.default_config with instrumentation = Some inst.Instrument.rt }
      p
  in
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "instr_cost matches" (Some o.Interp.instr_cost)
    (Metrics.counter_value snap "interp.instr_cost");
  let counter name = Option.get (Metrics.counter_value snap name) in
  let action_total =
    List.init Ppp_interp.Instr_rt.num_action_kinds (fun i ->
        counter ("interp.action." ^ Ppp_interp.Instr_rt.action_kind_name i))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check bool) "actions executed" true (action_total > 0);
  Alcotest.(check bool) "table bumped" true
    (counter "rt.array.bumps" + counter "rt.hash.bumps" > 0)

let test_trace_spans_pipeline () =
  Trace.start ();
  let prep = H.prepare_unoptimized ~name:"obs-test" (program ()) in
  let _ev = H.evaluate prep Config.ppp in
  Trace.stop ();
  let events = Trace.events () in
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) events in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s present" expected)
        true (List.mem expected names))
    [ "prepare"; "edge-profile"; "evaluate"; "instrument"; "overhead-run"; "score" ];
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) "non-negative duration" true (e.Trace.dur_us >= 0.0))
    events;
  (* The export is valid JSON in Chrome trace-event shape: an object with
     a traceEvents array of complete ("X") or instant ("i") events. *)
  let json = Jsonx.of_string (Jsonx.to_string (Trace.to_json ())) in
  let trace_events = Jsonx.to_list (Option.get (Jsonx.member json "traceEvents")) in
  Alcotest.(check int) "all events exported" (List.length events)
    (List.length trace_events);
  List.iter
    (fun ev ->
      (match Jsonx.member ev "ph" with
      | Some (Jsonx.Str ("X" | "i")) -> ()
      | _ -> Alcotest.fail "event is not complete/instant");
      (match Jsonx.member ev "ts" with
      | Some (Jsonx.Float _ | Jsonx.Int _) -> ()
      | _ -> Alcotest.fail "event lacks a timestamp");
      match Jsonx.member ev "name" with
      | Some (Jsonx.Str _) -> ()
      | _ -> Alcotest.fail "event lacks a name")
    trace_events

let test_metrics_sink_files () =
  with_metrics @@ fun () ->
  let o = Interp.run (program ()) in
  let snap = Metrics.snapshot () in
  let json_path = Filename.temp_file "ppp_metrics" ".json" in
  let csv_path = Filename.temp_file "ppp_metrics" ".csv" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove json_path;
      Sys.remove csv_path)
    (fun () ->
      Sink.write_metrics_json ~path:json_path snap;
      Sink.write_metrics_csv ~path:csv_path snap;
      let json = Jsonx.of_string (read_file json_path) in
      let metrics = Option.get (Jsonx.member json "metrics") in
      (match Jsonx.member (Option.get (Jsonx.member metrics "interp.dyn_instrs")) "value" with
      | Some (Jsonx.Int n) ->
          Alcotest.(check int) "snapshot value in file" o.Interp.dyn_instrs n
      | _ -> Alcotest.fail "interp.dyn_instrs missing from JSON sink");
      let csv = read_file csv_path in
      Alcotest.(check bool) "csv header" true
        (String.length csv > 22 && String.sub csv 0 22 = "name,kind,value,detail"))

let test_empty_trace_file_is_valid () =
  Trace.start ();
  Trace.stop ();
  let path = Filename.temp_file "ppp_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_file path;
      let json = Jsonx.of_string (read_file path) in
      Alcotest.(check int) "no events" 0
        (List.length (Jsonx.to_list (Option.get (Jsonx.member json "traceEvents")))))

let test_heat_dot () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  let e0 = Graph.add_edge g 0 1 in
  let e1 = Graph.add_edge g 1 2 in
  let e2 = Graph.add_edge g 0 2 in
  let freq e = if e = e0 then 100 else if e = e1 then 1 else 0 in
  ignore e2;
  let s =
    Format.asprintf "%a"
      (fun ppf -> Dot.pp_heat ~name:"heat" ~freq ~total:10_000 ppf)
      g
  in
  let has sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (* 100/10000 = 1% >= 0.125%: hot; 1/10000: cold; 0: never executed. *)
  Alcotest.(check bool) "hot edge red" true (has "color=\"red\"");
  Alcotest.(check bool) "cold edge blue" true (has "color=\"steelblue\"");
  Alcotest.(check bool) "unexecuted dashed" true (has "style=\"dashed\"");
  Alcotest.(check bool) "frequency label" true (has "label=\"100\"")

let suite =
  [
    Alcotest.test_case "disabled metrics are no-ops" `Quick test_disabled_is_noop;
    Alcotest.test_case "instruments record" `Quick test_instruments_record;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "interp counters match outcome" `Quick
      test_interp_counters_match_outcome;
    Alcotest.test_case "instrumented run counters" `Quick
      test_instrumented_run_counters;
    Alcotest.test_case "pipeline trace spans" `Quick test_trace_spans_pipeline;
    Alcotest.test_case "metrics sink files" `Quick test_metrics_sink_files;
    Alcotest.test_case "empty trace file valid" `Quick
      test_empty_trace_file_is_valid;
    Alcotest.test_case "heat dot" `Quick test_heat_dot;
  ]
