(* Statistics of the runtime frequency tables (Section 7.4): the
   701-slot / 3-try double-hashing behavior, cold and lost accounting
   under pressure, and the global rt.* metrics the tables feed. The key
   arithmetic below uses slot = (k + i*step) mod 701 with
   step = 1 + (k mod 699). *)

module Instr_rt = Ppp_interp.Instr_rt
module Table = Instr_rt.Table
module Metrics = Ppp_obs.Metrics

let with_metrics f =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let counter name =
  match Metrics.counter_value (Metrics.snapshot ()) name with
  | Some v -> v
  | None -> Alcotest.failf "metric %s not registered" name

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_array_table () =
  with_metrics @@ fun () ->
  let t = Table.create (Instr_rt.Array_table 4) in
  Table.bump t (-5);
  Table.bump t 0;
  Table.bump t 2;
  Table.bump t 2;
  Table.bump t 9;
  check_int "get 2" 2 (Table.get t 2);
  check_int "get 0" 1 (Table.get t 0);
  check_int "out of range reads as 0" 0 (Table.get t 9);
  check_int "negative reads as 0" 0 (Table.get t (-1));
  check_int "cold" 1 (Table.cold t);
  check_int "lost" 1 (Table.lost t);
  check_int "dynamic total" 5 (Table.dynamic_total t);
  let entries = ref [] in
  Table.iter_nonzero t (fun k c -> entries := (k, c) :: !entries);
  Alcotest.(check (list (pair int int)))
    "nonzero entries" [ (0, 1); (2, 2) ]
    (List.sort compare !entries);
  check_int "rt.array.bumps" 4 (counter "rt.array.bumps");
  check_int "rt.table.cold" 1 (counter "rt.table.cold");
  check_int "rt.table.lost" 1 (counter "rt.table.lost")

let test_hash_repeat_key () =
  with_metrics @@ fun () ->
  let t = Table.create Instr_rt.Hash_table in
  Table.bump t 12345;
  Table.bump t 12345;
  Table.bump t 12345;
  check_int "get" 3 (Table.get t 12345);
  let entries = ref [] in
  Table.iter_nonzero t (fun k c -> entries := (k, c) :: !entries);
  Alcotest.(check (list (pair int int))) "one entry" [ (12345, 3) ] !entries;
  check_int "rt.hash.bumps" 3 (counter "rt.hash.bumps");
  check_int "one probe per bump" 3 (counter "rt.hash.probes");
  check_int "one insert" 1 (counter "rt.hash.inserts");
  check_int "no collisions" 0
    (counter "rt.hash.collisions.try1"
    + counter "rt.hash.collisions.try2"
    + counter "rt.hash.collisions.try3")

let test_hash_collisions_across_tries () =
  with_metrics @@ fun () ->
  let t = Table.create Instr_rt.Hash_table in
  (* Key 0 occupies slot 0; key 3 occupies slot 3. Key 701 hashes to
     slot 0 with step 1 + (701 mod 699) = 3, so it collides at try 1
     (slot 0), again at try 2 (slot 3), and inserts at try 3 (slot 6). *)
  Table.bump t 0;
  Table.bump t 3;
  Table.bump t 701;
  check_int "get 0" 1 (Table.get t 0);
  check_int "get 3" 1 (Table.get t 3);
  check_int "get 701 after rehash" 1 (Table.get t 701);
  check_int "collisions at try 1" 1 (counter "rt.hash.collisions.try1");
  check_int "collisions at try 2" 1 (counter "rt.hash.collisions.try2");
  check_int "collisions at try 3" 0 (counter "rt.hash.collisions.try3");
  check_int "probes" 5 (counter "rt.hash.probes");
  check_int "inserts" 3 (counter "rt.hash.inserts");
  check_int "nothing lost" 0 (Table.lost t);
  (* Re-bumping an existing key probes but does not insert. *)
  Table.bump t 0;
  check_int "get 0 again" 2 (Table.get t 0);
  check_int "probes after re-bump" 6 (counter "rt.hash.probes");
  check_int "inserts unchanged" 3 (counter "rt.hash.inserts")

let test_hash_lost_under_pressure () =
  with_metrics @@ fun () ->
  let t = Table.create Instr_rt.Hash_table in
  (* Keys 0..700 fill every slot first-try (key k lands in slot k when
     inserted in ascending order), so any further new key exhausts all
     three tries and is lost. *)
  for k = 0 to 700 do
    Table.bump t k
  done;
  check_int "no collisions while filling" 0
    (counter "rt.hash.collisions.try1");
  Table.bump t 10_000;
  check_int "lost" 1 (Table.lost t);
  check_int "rt.table.lost" 1 (counter "rt.table.lost");
  check_int "lost key reads as 0" 0 (Table.get t 10_000);
  check_int "all three tries collided" 3
    (counter "rt.hash.collisions.try1"
    + counter "rt.hash.collisions.try2"
    + counter "rt.hash.collisions.try3");
  check_int "probes" (701 + 3) (counter "rt.hash.probes");
  check_int "inserts" 701 (counter "rt.hash.inserts");
  Table.bump_cold t;
  check_int "dynamic total includes cold and lost" 703 (Table.dynamic_total t)

(* Satellite regression: every dropped path execution — array overflow
   and the Section 7.4 double-hashing give-up alike — increments the
   unified rt.lost_paths metric, under either overflow policy. *)
let test_lost_paths_on_saturating_workload () =
  with_metrics @@ fun () ->
  let t = Table.create Instr_rt.Hash_table in
  for k = 0 to 700 do
    Table.bump t k
  done;
  (* Table full: 40 fresh keys exhaust all three tries every time. *)
  for k = 10_000 to 10_039 do
    Table.bump t k
  done;
  check_int "rt.lost_paths counts every drop" 40 (counter "rt.lost_paths");
  check_int "lost agrees" 40 (Table.lost t);
  (* Array overflow drops feed the same metric. *)
  let a = Table.create (Instr_rt.Array_table 2) in
  Table.bump a 5;
  Table.bump a 7;
  check_int "rt.lost_paths includes array overflow" 42
    (counter "rt.lost_paths");
  check_int "dynamic total preserved" (701 + 40) (Table.dynamic_total t)

let test_overflow_bin_policy () =
  with_metrics @@ fun () ->
  let t =
    Table.create ~policy:(Table.Overflow_bin { cap = 3 }) Instr_rt.Hash_table
  in
  for k = 0 to 700 do
    Table.bump t k
  done;
  for k = 20_000 to 20_004 do
    Table.bump t k
  done;
  (* 5 drops: 3 preserved in the bin (then saturated), 2 genuinely lost. *)
  check_int "overflow bin holds cap" 3 (Table.overflow t);
  check_int "rest lost" 2 (Table.lost t);
  check_bool "saturated" true (Table.saturated t);
  check_int "rt.lost_paths counts all five" 5 (counter "rt.lost_paths");
  check_int "rt.table.overflow" 3 (counter "rt.table.overflow");
  check_int "rt.table.saturations" 1 (counter "rt.table.saturations");
  check_int "dynamic total includes the bin" (701 + 5) (Table.dynamic_total t)

let test_metrics_gated_off () =
  Metrics.set_enabled false;
  Metrics.reset ();
  let t = Table.create Instr_rt.Hash_table in
  Table.bump t 42;
  Table.bump t 42;
  Table.bump t (-1);
  check_int "table still counts" 2 (Table.get t 42);
  check_int "cold still counts" 1 (Table.cold t);
  check_int "rt.hash.bumps stays 0" 0 (counter "rt.hash.bumps");
  check_int "rt.hash.probes stays 0" 0 (counter "rt.hash.probes");
  check_int "rt.table.cold stays 0" 0 (counter "rt.table.cold")

let suite =
  [
    Alcotest.test_case "array table stats" `Quick test_array_table;
    Alcotest.test_case "hash repeat key" `Quick test_hash_repeat_key;
    Alcotest.test_case "hash collisions across tries" `Quick
      test_hash_collisions_across_tries;
    Alcotest.test_case "hash lost under pressure" `Quick
      test_hash_lost_under_pressure;
    Alcotest.test_case "lost paths on saturating workload" `Quick
      test_lost_paths_on_saturating_workload;
    Alcotest.test_case "overflow bin policy" `Quick test_overflow_bin_policy;
    Alcotest.test_case "metrics gated off" `Quick test_metrics_gated_off;
  ]
