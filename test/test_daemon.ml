(* The daemon's crash-safety guarantees, tested without sleeping through
   real supervision: the wire framing rejects every corruption, the
   store salvages or quarantines any on-disk damage (never raises, never
   serves wrong bytes), a kill-9 mid-write leaves committed entries
   byte-identical on reopen, and session placement plans survive the
   export/import round-trip that daemon persistence is built on. A tiny
   end-to-end check boots a real server process; the heavyweight
   adversarial scenarios live in [pppc chaos]. *)

module Wire = Ppp_daemon.Wire
module Store = Ppp_daemon.Store
module Ops = Ppp_daemon.Ops
module Server = Ppp_daemon.Server
module Client = Ppp_daemon.Client
module Diagnostic = Ppp_resilience.Diagnostic
module Faults = Ppp_resilience.Faults
module Session = Ppp_session.Session
module H = Ppp_harness.Pipeline
module Jsonx = Ppp_obs.Jsonx

let tmpdir =
  let count = ref 0 in
  fun () ->
    incr count;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ppp-daemon-test-%d-%d" (Unix.getpid ()) !count)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* {2 Wire framing} *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_wire_roundtrip () =
  with_socketpair (fun a b ->
      List.iter
        (fun payload ->
          (match Wire.write_frame a payload with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "write_frame failed");
          match Wire.read_frame b with
          | Ok got -> Alcotest.(check string) "payload round-trips" payload got
          | Error _ -> Alcotest.fail "read_frame failed")
        [ ""; "x"; "hello world"; String.make 100_000 '\xab';
          "binary\x00\x01\xff\ndata" ])

let test_wire_rejects_corruption () =
  (* Flipping any byte of a frame must yield Corrupt or Closed, never a
     wrong payload and never an exception. *)
  let payload = "the payload under test" in
  for flip = 0 to 12 + String.length payload do
    with_socketpair (fun a b ->
        (match Wire.write_frame a payload with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "write failed");
        (* Rebuild the frame bytes by reading them raw, flip one, resend. *)
        let buf = Bytes.create (13 + String.length payload) in
        let rec fill pos =
          if pos < Bytes.length buf then
            let n = Unix.read b buf pos (Bytes.length buf - pos) in
            fill (pos + n)
        in
        fill 0;
        Bytes.set buf flip
          (Char.chr (Char.code (Bytes.get buf flip) lxor 0x20));
        with_socketpair (fun c d ->
            ignore
              (Ppp_resilience.Robust_io.write_all c buf 0 (Bytes.length buf));
            Unix.close c;
            match Wire.read_frame d with
            | Ok got ->
                Alcotest.(check bool)
                  (Printf.sprintf "flip at %d must not alter the payload" flip)
                  true (got = payload)
            | Error (Wire.Corrupt _) | Error Wire.Closed -> ()
            | Error Wire.Timeout -> Alcotest.fail "unexpected timeout"))
  done

let test_wire_timeout () =
  with_socketpair (fun _a b ->
      let t0 = Unix.gettimeofday () in
      match Wire.read_frame ~deadline:(t0 +. 0.1) b with
      | Error Wire.Timeout ->
          Alcotest.(check bool)
            "timeout is prompt" true
            (Unix.gettimeofday () -. t0 < 1.0)
      | _ -> Alcotest.fail "expected a timeout")

let test_wire_truncated () =
  with_socketpair (fun a b ->
      (* A header that promises more payload than ever arrives. *)
      (match Wire.write_frame a (String.make 500 'q') with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write failed");
      let buf = Bytes.create 100 in
      let rec fill pos =
        if pos < 100 then fill (pos + Unix.read b buf pos (100 - pos))
      in
      fill 0;
      with_socketpair (fun c d ->
          ignore (Ppp_resilience.Robust_io.write_all c buf 0 100);
          Unix.close c;
          match Wire.read_frame d with
          | Error (Wire.Corrupt _) -> ()
          | Error e -> Alcotest.failf "expected Corrupt, got %s" (Wire.error_message e)
          | Ok _ -> Alcotest.fail "truncated frame must not parse"))

(* {2 Ops codecs} *)

let test_ops_roundtrip () =
  let reqs =
    [ Ops.Ping;
      Ops.Collect
        { bench = "bzip2"; scale = 3; sample_rate = 1;
          burst = Ppp_interp.Sampling.default_burst; sample_seed = 0 };
      Ops.Collect
        { bench = "vpr"; scale = 2; sample_rate = 16; burst = 8;
          sample_seed = 0x5eed };
      Ops.Merge { dumps = [ "a b c"; ""; "\x00bin" ]; decay = 1.0 };
      Ops.Merge { dumps = [ "old"; "new" ]; decay = 0.875 };
      Ops.Opt
        { name = "bench:gcc"; program = "routine f {}"; profile = Some "p";
          iterate = 4; plans = Some "deadbeef" };
      Ops.Status; Ops.Shutdown; Ops.Stall 1.5; Ops.Crash ]
  in
  List.iteri
    (fun i req ->
      let env = { Ops.id = i; deadline_ms = 100 * i; req } in
      match Ops.decode_request (Ops.encode_request env) with
      | Ok got -> Alcotest.(check bool) "request round-trips" true (got = env)
      | Error e -> Alcotest.failf "decode_request failed: %s" e)
    reqs;
  let replies =
    [ Ops.Okay { body = "result\nbytes\x00"; meta = [ ("k", Jsonx.Int 7) ] };
      Ops.Failed
        {
          code = "timeout";
          diagnostics =
            [ Diagnostic.make ~severity:Diagnostic.Warning ~line:3
                ~routine:"f" Diagnostic.Deadline_exceeded "too slow" ];
        } ]
  in
  List.iter
    (fun r ->
      match Ops.decode_reply (Ops.encode_reply r) with
      | Ok got -> Alcotest.(check bool) "reply round-trips" true (got = r)
      | Error e -> Alcotest.failf "decode_reply failed: %s" e)
    replies

let test_ops_hex () =
  let s = String.init 256 Char.chr in
  match Ops.string_of_hex (Ops.hex_of_string s) with
  | Some got -> Alcotest.(check string) "hex round-trips all bytes" s got
  | None -> Alcotest.fail "hex decode failed"

(* {2 Store} *)

let test_store_roundtrip () =
  let dir = tmpdir () in
  let t, diags = Store.open_store ~dir in
  Alcotest.(check int) "fresh store has no diagnostics" 0 (List.length diags);
  let payload = "profile dump\nwith lines\nand \x00 bytes" in
  (match Store.put t ~kind:"profile" ~key:"bzip2/scale=2" payload with
  | Ok () -> ()
  | Error d -> Alcotest.failf "put failed: %s" d.Diagnostic.message);
  (match Store.get t ~kind:"profile" ~key:"bzip2/scale=2" with
  | Some got -> Alcotest.(check string) "get returns put bytes" payload got
  | None -> Alcotest.fail "get missed a committed entry");
  Store.close t;
  (* Reopen: the entry survives, byte-identical. *)
  let t2, diags2 = Store.open_store ~dir in
  Alcotest.(check int) "clean reopen has no diagnostics" 0 (List.length diags2);
  (match Store.get t2 ~kind:"profile" ~key:"bzip2/scale=2" with
  | Some got -> Alcotest.(check string) "entry survives reopen" payload got
  | None -> Alcotest.fail "entry lost across reopen");
  Store.close t2

let obj_files dir =
  let objects = Filename.concat dir "objects" in
  Sys.readdir objects |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".obj")
  |> List.map (Filename.concat objects)
  |> List.sort compare

(* The central salvage property: whatever prefix-truncation or byte-flip
   hits an object file, reopening never raises and get never serves
   wrong bytes — each entry comes back either byte-identical or
   quarantined with a diagnostic. *)
let prop_store_salvage =
  QCheck.Test.make ~name:"corrupted store entries are salvaged or quarantined"
    ~count:60
    QCheck.(triple small_int small_int bool)
    (fun (seed, pos, truncate) ->
      let dir = tmpdir () in
      let t, _ = Store.open_store ~dir in
      let payload_a = Printf.sprintf "payload A seed=%d\n%s" seed (String.make 200 'a') in
      let payload_b = Printf.sprintf "payload B seed=%d\n%s" seed (String.make 100 'b') in
      (match
         ( Store.put t ~kind:"profile" ~key:"a" payload_a,
           Store.put t ~kind:"plans" ~key:"b" payload_b )
       with
      | Ok (), Ok () -> ()
      | _ -> QCheck.Test.fail_report "put failed");
      Store.close t;
      (* Corrupt the first object file at a position derived from the
         generated input. *)
      (match obj_files dir with
      | [] -> QCheck.Test.fail_report "no object files on disk"
      | file :: _ ->
          let contents = read_file file in
          let n = String.length contents in
          let at = pos mod n in
          let damaged =
            if truncate then String.sub contents 0 at
            else begin
              let b = Bytes.of_string contents in
              Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x01));
              Bytes.to_string b
            end
          in
          if damaged <> contents then write_raw file damaged);
      let t2, _diags = Store.open_store ~dir in
      let ok_entry key payload =
        match Store.get t2 ~kind:(if key = "a" then "profile" else "plans") ~key with
        | Some got -> got = payload (* never wrong bytes *)
        | None -> true (* quarantined is acceptable *)
      in
      let a_ok = ok_entry "a" payload_a in
      let b_ok = ok_entry "b" payload_b in
      (* At least one of the two entries was untouched and must survive. *)
      let untouched_served =
        Store.get t2 ~kind:"plans" ~key:"b" = Some payload_b
        || Store.get t2 ~kind:"profile" ~key:"a" = Some payload_a
      in
      Store.close t2;
      a_ok && b_ok && untouched_served)

let test_store_kill9_mid_write () =
  (* A writer killed with SIGKILL mid-put must leave committed entries
     byte-identical and at worst a swept temp file for the in-flight
     one. Fork a child that commits entry A, then loops puts of entry B
     forever; kill it at a random point. *)
  let dir = tmpdir () in
  let payload_a = String.concat "\n" (List.init 64 (fun i -> Printf.sprintf "line %d" i)) in
  let rd, wr = Unix.pipe () in
  (match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let t, _ = Store.open_store ~dir in
      (match Store.put t ~kind:"profile" ~key:"committed" payload_a with
      | Ok () -> ignore (Unix.write wr (Bytes.of_string "!") 0 1)
      | Error _ -> Unix._exit 1);
      let i = ref 0 in
      while true do
        incr i;
        ignore
          (Store.put t ~kind:"profile" ~key:"inflight"
             (String.make (1 + (!i mod 5000)) (Char.chr (65 + (!i mod 26)))))
      done;
      Unix._exit 0
  | pid ->
      Unix.close wr;
      (* Wait for the committed entry, let the put loop churn, then
         SIGKILL. *)
      let one = Bytes.create 1 in
      let rec await () =
        match Unix.read rd one 0 1 with
        | 1 -> ()
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
      in
      await ();
      Unix.close rd;
      Unix.sleepf 0.05;
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      let t, _diags = Store.open_store ~dir in
      (match Store.get t ~kind:"profile" ~key:"committed" with
      | Some got ->
          Alcotest.(check string) "committed entry byte-identical after kill -9"
            payload_a got
      | None -> Alcotest.fail "committed entry lost after kill -9");
      (* Whatever the in-flight entry's fate, a served value must be one
         the child actually wrote (all its puts are single-char runs). *)
      (match Store.get t ~kind:"profile" ~key:"inflight" with
      | None -> ()
      | Some v ->
          Alcotest.(check bool) "in-flight entry is a value actually written"
            true
            (String.length v > 0
            && String.for_all (fun c -> c = v.[0]) v));
      (* No temp droppings survive reopen. *)
      let leftovers =
        Sys.readdir (Filename.concat dir "objects")
        |> Array.to_list
        |> List.filter (fun n -> String.length n > 0 && n.[0] = '.')
      in
      Alcotest.(check (list string)) "temp files swept" [] leftovers;
      Store.close t)

let test_store_journal_salvage () =
  let dir = tmpdir () in
  let t, _ = Store.open_store ~dir in
  (match Store.put t ~kind:"profile" ~key:"k" "vvv" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "put failed");
  Store.close t;
  (* Tear the journal: append half a line with no newline. *)
  let journal = Filename.concat dir "journal.log" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 journal in
  output_string oc "put kind=profile key=6b len=3";
  close_out oc;
  let t2, diags = Store.open_store ~dir in
  Alcotest.(check bool) "torn journal reported" true
    (List.exists (fun d -> d.Diagnostic.kind = Diagnostic.Truncated) diags);
  (match Store.get t2 ~kind:"profile" ~key:"k" with
  | Some "vvv" -> ()
  | _ -> Alcotest.fail "entry must survive journal salvage");
  Store.close t2;
  (* And the journal is clean again: a third open reports nothing. *)
  let t3, diags3 = Store.open_store ~dir in
  Alcotest.(check int) "journal repaired in place" 0 (List.length diags3);
  Store.close t3

(* {2 Session plan persistence} *)

let bench_program name = (Ppp_workloads.Spec.find name).Ppp_workloads.Spec.build ~scale:1

let test_session_plans_roundtrip () =
  let p = bench_program "bzip2" in
  let s = Session.create ~name:"export" () in
  let prep = H.prepare ~session:s ~name:"export" p in
  (* Placement plans are made while instrumenting, i.e. during
     evaluation — prepare alone only optimizes. *)
  ignore (H.evaluate prep Ppp_core.Config.ppp);
  let text = Session.export_plans s in
  Alcotest.(check bool) "export has plan records" true
    (String.length text > String.length "ppp-session-plans v1\nend\n");
  (* Import into a fresh session synced to the same optimized program
     the plans were made for. *)
  let s2 = Session.create ~name:"import" () in
  ignore (Session.sync s2 prep.H.optimized);
  let imported, diags = Session.import_plans s2 prep.H.optimized text in
  Alcotest.(check int) "no diagnostics on a clean import" 0 (List.length diags);
  Alcotest.(check bool) "plans imported" true (imported > 0);
  (* Re-export from the importing session: every imported plan is
     retrievable again. *)
  let text2 = Session.export_plans s2 in
  Alcotest.(check bool) "imported plans re-export" true
    (String.length text2 > String.length "ppp-session-plans v1\nend\n");
  (* Importing against a different program generation never raises and
     classifies the mismatch instead of applying a stale plan. *)
  let s3 = Session.create ~name:"stale" () in
  ignore (Session.sync s3 p);
  let imported3, diags3 = Session.import_plans s3 p text in
  Alcotest.(check bool) "stale import classified, not applied blindly" true
    (imported3 + List.length diags3 > 0)

let prop_session_plans_never_raise =
  QCheck.Test.make ~name:"corrupted plan exports never raise, are classified"
    ~count:40
    QCheck.(pair small_int small_int)
    (fun (seed, pos) ->
      let p = bench_program "vpr" in
      let s = Session.create ~name:"fuzz-export" () in
      let prep = H.prepare ~session:s ~name:"fuzz-export" p in
      ignore (H.evaluate prep Ppp_core.Config.ppp);
      let p = prep.H.optimized in
      let text = Session.export_plans s in
      let n = String.length text in
      if n = 0 then true
      else begin
        let rng = Faults.rng ~seed in
        let damaged =
          match seed mod 3 with
          | 0 -> String.sub text 0 (pos mod n) (* truncation *)
          | 1 ->
              let b = Bytes.of_string text in
              let at = pos mod n in
              Bytes.set b at (Char.chr (Faults.int rng 256));
              Bytes.to_string b (* byte flip *)
          | _ -> Faults.apply rng Faults.Garbage_line text
        in
        let s2 = Session.create ~name:"fuzz-import" () in
        ignore (Session.sync s2 p);
        match Session.import_plans s2 p damaged with
        | _imported, _diags -> true (* must simply not raise *)
        | exception _ -> false
      end)

(* {2 End-to-end: a real server process} *)

let test_server_e2e () =
  let dir = tmpdir () in
  let socket = Filename.concat dir "pppd.sock" in
  let cfg =
    {
      (Server.default_config ~socket_path:socket
         ~store_dir:(Filename.concat dir "store"))
      with
      Server.quiet = true;
      workers = 1;
    }
  in
  match Unix.fork () with
  | 0 ->
      (try Server.run cfg with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      let deadline = Unix.gettimeofday () +. 10. in
      let rec await_ready () =
        match Client.call ~socket ~deadline_ms:500 Ops.Ping with
        | Ok ("pong", _) -> true
        | _ ->
            if Unix.gettimeofday () > deadline then false
            else begin
              Unix.sleepf 0.05;
              await_ready ()
            end
      in
      let ready = await_ready () in
      let merged =
        if not ready then None
        else
          match
            Client.call ~socket ~deadline_ms:10_000
              (Ops.Merge { dumps = [ "ppp 1\n"; "ppp 1\n" ]; decay = 1.0 })
          with
          | Ok (body, _) -> Some body
          | Error _ -> None
      in
      ignore (Client.call ~socket ~deadline_ms:3_000 Ops.Shutdown);
      let rec reap () =
        match Unix.waitpid [] pid with
        | _, st -> st
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
      in
      let st = reap () in
      Alcotest.(check bool) "daemon became ready" true ready;
      Alcotest.(check bool) "merge over the socket succeeded" true
        (merged <> None);
      Alcotest.(check bool) "daemon exited cleanly" true (st = Unix.WEXITED 0)

let suite =
  [
    Alcotest.test_case "wire: frames round-trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire: corruption rejected" `Quick
      test_wire_rejects_corruption;
    Alcotest.test_case "wire: deadline becomes Timeout" `Quick
      test_wire_timeout;
    Alcotest.test_case "wire: truncated frame is Corrupt" `Quick
      test_wire_truncated;
    Alcotest.test_case "ops: codecs round-trip" `Quick test_ops_roundtrip;
    Alcotest.test_case "ops: hex round-trips all bytes" `Quick test_ops_hex;
    Alcotest.test_case "store: put/get/reopen byte-identical" `Quick
      test_store_roundtrip;
    Alcotest.test_case "store: kill -9 mid-write keeps committed entries"
      `Quick test_store_kill9_mid_write;
    Alcotest.test_case "store: torn journal salvaged in place" `Quick
      test_store_journal_salvage;
    Alcotest.test_case "session: plans export/import round-trip" `Quick
      test_session_plans_roundtrip;
    Alcotest.test_case "server: end-to-end over the socket" `Quick
      test_server_e2e;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_store_salvage; prop_session_plans_never_raise ]
